//! Partially pivoted LU factorization.

use crate::{FactorError, Matrix};

/// LU factorization with partial pivoting: `P·A = L·U`.
///
/// This is the workhorse solver for the circuit simulator's MNA systems,
/// which are square, generally non-symmetric, and small (tens to a few
/// hundred unknowns).
///
/// # Example
///
/// ```
/// use linalg::{Lu, Matrix};
///
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]); // needs pivoting
/// let lu = Lu::factor(&a).expect("non-singular");
/// let x = lu.solve(&[2.0, 2.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

/// Pivots smaller than this (relative to the largest pivot seen) are treated
/// as singular.
const PIVOT_EPS: f64 = 1e-300;

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] for non-square input and
    /// [`FactorError::Singular`] when a pivot collapses to (near) zero.
    pub fn factor(a: &Matrix) -> Result<Self, FactorError> {
        if a.rows() != a.cols() {
            return Err(FactorError::Shape { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Find pivot in column k.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if !(max > PIVOT_EPS) {
                return Err(FactorError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for j in 0..n {
                    let t = lu[(p, j)];
                    lu[(p, j)] = lu[(k, j)];
                    lu[(k, j)] = t;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= m * u;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit lower factor.
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Back substitution with upper factor.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows()` differs from the factored dimension.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.dim(), "rhs rows must equal matrix dimension");
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col: Vec<f64> = (0..b.rows()).map(|i| b[(i, j)]).collect();
            let x = self.solve(&col);
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x).iter().zip(b).map(|(ax, bb)| (ax - bb).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn solves_simple_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        let b = [3.0, 5.0];
        let x = lu.solve(&b);
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(FactorError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(FactorError::Shape { .. })));
    }

    #[test]
    fn determinant_matches_formula() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (3.0 * 6.0 - 8.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivot() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_inverts() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let lu = Lu::factor(&a).unwrap();
        let inv = lu.solve_matrix(&Matrix::identity(2));
        let prod = a.matmul(&inv);
        assert!((&prod - &Matrix::identity(2)).max_abs() < 1e-12);
    }

    #[test]
    fn large_diagonally_dominant_system() {
        let n = 40;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0 + i as f64
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b);
        assert!(residual(&a, &x, &b) < 1e-9);
    }
}
