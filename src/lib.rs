//! Umbrella crate for the DNN-Opt reproduction workspace.
//!
//! This package exists to host the repository-level `examples/` and `tests/`
//! directories; it re-exports every workspace crate under one roof so that
//! examples and integration tests can `use dnnopt_suite::...` or the
//! individual crates directly.
//!
//! The interesting code lives in the member crates:
//!
//! - [`dnn_opt`] — the paper's algorithm (actor-critic surrogate optimizer)
//! - [`circuits`] — six parameterized analog circuits with measurements
//! - [`spice`] — the MNA circuit-simulator substrate
//! - [`opt`] — the sizing-problem abstraction and the baseline optimizers
//! - [`nn`], [`gp`], [`linalg`] — numeric substrates

pub use circuits;
pub use dnn_opt;
pub use gp;
pub use linalg;
pub use nn;
pub use opt;
pub use spice;
