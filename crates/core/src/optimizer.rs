//! The DNN-Opt optimization loop (paper Algorithm 1).

use std::time::{Duration, Instant};

use linalg::Matrix;
use opt::sampling::latin_hypercube;
use opt::{to_unit, Evaluator, Fom, Optimizer, RunResult, SizingProblem, StopPolicy};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::actor::Actor;
use crate::config::DnnOptConfig;
use crate::critic::Critic;
use crate::elite::{elite_indices, restricted_bounds};

/// The DNN-Opt optimizer (paper Algorithm 1): an RL-inspired two-stage
/// DNN black-box optimizer.
///
/// Per iteration it (re)trains a critic on Eq. 2 pseudo-samples, trains an
/// actor through the frozen critic against the Eq. 4 FoM with the Eq. 6
/// elite-box penalty, proposes one candidate per elite design (plus
/// exploration noise), and spends exactly **one** simulation on the
/// candidate the critic ranks best (Eq. 8).
///
/// # Example
///
/// ```
/// use dnn_opt::DnnOpt;
/// use opt::{Fom, Optimizer, SizingProblem, SpecResult, StopPolicy};
///
/// struct Toy;
/// impl SizingProblem for Toy {
///     fn dim(&self) -> usize { 2 }
///     fn bounds(&self) -> (Vec<f64>, Vec<f64>) { (vec![0.0; 2], vec![1.0; 2]) }
///     fn num_constraints(&self) -> usize { 1 }
///     fn evaluate(&self, x: &[f64]) -> SpecResult {
///         SpecResult { failure: None,
///             objective: (x[0] - 0.7).powi(2) + (x[1] - 0.2).powi(2),
///             constraints: vec![0.4 - x[0]],
///         }
///     }
/// }
///
/// let fom = Fom::uniform(1.0, 1);
/// let run = DnnOpt::default().run(&Toy, &fom, 60, StopPolicy::Exhaust, 1);
/// assert!(run.history.best_feasible().is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DnnOpt {
    /// Hyperparameters.
    pub config: DnnOptConfig,
}

impl DnnOpt {
    /// Creates the optimizer with explicit hyperparameters.
    pub fn new(config: DnnOptConfig) -> Self {
        DnnOpt { config }
    }
}

impl Optimizer for DnnOpt {
    fn name(&self) -> &'static str {
        "DNN-Opt"
    }

    fn run(
        &self,
        problem: &dyn SizingProblem,
        fom: &Fom,
        budget: usize,
        stop: StopPolicy,
        seed: u64,
    ) -> RunResult {
        let t0 = Instant::now();
        let _run = telemetry::span_with(telemetry::SpanId::Run, budget as u64);
        let mut model_time = Duration::ZERO;
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed ^ cfg.seed_offset);
        let (lb, ub) = problem.bounds();
        let d = problem.dim();
        let mut ev = Evaluator::new(problem, fom, budget);

        // Corner-resolved critic mode (opt-in): on a corner-indexed problem
        // the surrogate trains on the per-corner spec vector — 1 + K·m
        // wide — against the corner-tiled FoM, so it learns *which* corner
        // pushes a candidate out of spec. History, elite selection and the
        // simulated FoM stay on the worst-case aggregate either way.
        let per_corner = cfg.corner_critic && problem.num_corners() > 1;
        let surrogate_fom = if per_corner {
            fom.tiled(problem.num_corners())
        } else {
            fom.clone()
        };

        // Line 1: initial population, evaluated as one parallel batch.
        // Results are recorded in candidate order, so runs are identical
        // for any thread count. Under FirstFeasible the whole batch is
        // still simulated and recorded (batch semantics), unlike the old
        // serial loop which returned mid-population.
        let n_init = cfg.n_init.min(budget);
        let init = latin_hypercube(&mut rng, &lb, &ub, n_init);
        let init_evals = ev.evaluate_batch(&init);
        if stop == StopPolicy::FirstFeasible && init_evals.iter().any(|e| e.feasible) {
            return finish(self.name(), ev, t0, model_time);
        }

        // Main loop (lines 2–16): one simulation per iteration.
        while !ev.exhausted() {
            let _gen = telemetry::span_with(telemetry::SpanId::Generation, ev.used() as u64);
            let history = ev.history().entries();
            let n = history.len();
            // Unit-cube coordinates and robustly clipped spec vectors:
            // failed-simulation placeholders are cliffs of ~1e12 that would
            // otherwise dominate the critic's target standardization and
            // flatten every real spec to numerical zero.
            let xs: Vec<Vec<f64>> = history.iter().map(|e| to_unit(&e.x, &lb, &ub)).collect();
            let mut fs: Vec<Vec<f64>> = history
                .iter()
                .map(|e| {
                    if per_corner {
                        e.corner_vector()
                    } else {
                        e.spec.as_vector()
                    }
                })
                .collect();
            // NaN quarantine: a failed evaluation may leave NaN/∞ in a spec
            // slot (e.g. a measurement on a truncated waveform). Map every
            // non-finite target to the failure penalty before clipping so
            // nothing non-finite can reach critic training or a GEMM.
            for f in &mut fs {
                for v in f.iter_mut() {
                    if !v.is_finite() {
                        *v = opt::FAILURE_PENALTY;
                    }
                }
            }
            let n_specs = fs[0].len();
            for c in 0..n_specs {
                let col: Vec<f64> = fs.iter().map(|f| f[c]).collect();
                let (clo, chi) = opt::robust_clip_bounds(&col);
                for f in &mut fs {
                    f[c] = f[c].clamp(clo, chi);
                }
            }
            let foms: Vec<f64> = history.iter().map(|e| e.fom).collect();

            // Lines 3–6: fresh networks, critic then actor.
            let tm = Instant::now();
            let critic = {
                let _ct = telemetry::span(telemetry::SpanId::CriticTrain);
                Critic::train(cfg, &xs, &fs, &mut rng)
            };
            // Lines 7–8: elite population and its bounding box.
            let elite_idx = elite_indices(&foms, cfg.n_elite);
            let elite: Vec<Vec<f64>> = elite_idx.iter().map(|&i| xs[i].clone()).collect();
            let (lb_rest, ub_rest) = restricted_bounds(&elite);
            let actor = {
                let _at = telemetry::span(telemetry::SpanId::ActorTrain);
                Actor::train(
                    cfg,
                    &critic,
                    &surrogate_fom,
                    &elite,
                    &lb_rest,
                    &ub_rest,
                    &mut rng,
                )
            };
            model_time += tm.elapsed();

            // Line 9 + Eq. 8: candidates from every elite design with
            // exploration noise, ranked by the critic's FoM.
            let progress = n as f64 / budget.max(1) as f64;
            let sigma = cfg.noise_initial + (cfg.noise_final - cfg.noise_initial) * progress;
            // Population-scaled exploration: early on, the elite bounding
            // box spans most of the cube and steps must be box-sized to
            // make progress across plateaus; as the elites converge the
            // box (and the noise with it) contracts — the same
            // self-scaling that makes DE mutations work.
            let box_sigma: Vec<f64> = lb_rest
                .iter()
                .zip(&ub_rest)
                .map(|(&l, &u)| sigma.max(0.3 * (u - l)))
                .collect();
            // Several noise realizations per elite design (the critic
            // ranking is free — only the one winner is simulated). The
            // Eq. 8 selection is baseline-corrected: candidates are ranked
            // by the elite's *simulated* FoM plus the critic's predicted
            // FoM *change* for the step, g[Q(x,Δ)] − g[Q(x,0)]. With a
            // perfect critic this equals Eq. 8's absolute ranking; with an
            // imperfect one the critic's per-point bias cancels, so a
            // candidate near a good elite is not discarded merely because
            // the smooth critic cannot reproduce that elite's exceptional
            // absolute value.
            let variants = 4usize;
            let ne = elite.len();
            let elite_fom: Vec<f64> = elite_idx.iter().map(|&i| foms[i]).collect();
            let mut cands: Vec<Vec<f64>> = Vec::with_capacity(ne * variants);
            let mut rows = Matrix::zeros(ne * (variants + 1), 2 * d);
            for (ei, x_es) in elite.iter().enumerate() {
                let dx = actor.propose_one(x_es);
                for v in 0..variants {
                    let r = ei * (variants + 1) + v;
                    let mut cand = x_es.clone();
                    // Sparse exploration: perturb a random coordinate
                    // subset (~30%, at least one) on top of the actor's
                    // proposal. All-coordinate Gaussian steps are almost
                    // always destructive on rugged sizing landscapes,
                    // whereas sparse moves leave most of a working design
                    // intact — the same reason DE uses binomial crossover.
                    let jrand = rng.gen_range(0..d);
                    for j in 0..d {
                        let active = j == jrand || rng.gen::<f64>() < 0.3;
                        let noise = if active {
                            box_sigma[j] * nn::gaussian(&mut rng)
                        } else {
                            0.0
                        };
                        cand[j] = (cand[j] + dx[j] + noise).clamp(0.0, 1.0);
                    }
                    for j in 0..d {
                        rows[(r, j)] = x_es[j];
                        rows[(r, d + j)] = cand[j] - x_es[j];
                    }
                    cands.push(cand);
                }
                // Baseline row: the zero step from this elite.
                let r0 = ei * (variants + 1) + variants;
                for j in 0..d {
                    rows[(r0, j)] = x_es[j];
                }
            }
            let preds = critic.predict(&rows);
            let mut best: Option<(Vec<f64>, f64)> = None;
            for (idx, cand) in cands.into_iter().enumerate() {
                let ei = idx / variants;
                let r = ei * (variants + 1) + (idx % variants);
                let r0 = ei * (variants + 1) + variants;
                let g_step = surrogate_fom.value_of_vector(preds.row(r));
                let g_base = surrogate_fom.value_of_vector(preds.row(r0));
                // Improvement credit is capped: differencing two network
                // outputs doubles their noise, and uncapped optimistic
                // outliers would dominate the argmin (winner's curse).
                let g = elite_fom[ei] + (g_step - g_base).max(-0.25);
                if best.as_ref().is_none_or(|(_, bg)| g < *bg) {
                    best = Some((cand, g));
                }
            }
            let (cand_unit, pred_g) = best.expect("elite population is never empty");
            // Line 10: simulate the selected candidate.
            let cand: Vec<f64> = cand_unit
                .iter()
                .enumerate()
                .map(|(j, &u)| lb[j] + u * (ub[j] - lb[j]))
                .collect();
            let e = ev.evaluate(&cand);
            if std::env::var_os("DNNOPT_ITER_TRACE").is_some() {
                let best_now = ev.history().best().map(|b| b.fom).unwrap_or(f64::NAN);
                eprintln!(
                    "iter {:4} pred_g={:8.3} actual_g={:8.3} best={:8.3} failed={} sigma={:.3}",
                    ev.used(),
                    pred_g,
                    e.fom,
                    best_now,
                    e.spec.is_failure(),
                    sigma
                );
            }
            // Line 11: return condition.
            if stop == StopPolicy::FirstFeasible && e.feasible {
                break;
            }
        }
        finish(self.name(), ev, t0, model_time)
    }
}

fn finish(name: &str, ev: Evaluator<'_>, t0: Instant, model_time: Duration) -> RunResult {
    let (history, sim_time) = ev.into_parts();
    RunResult {
        optimizer: name.to_string(),
        history,
        model_time,
        sim_time,
        total_time: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt::SpecResult;

    /// Constrained quadratic: minimize ‖x−0.3‖², s.t. every x_i ≥ 0.1 and
    /// Σx ≤ 0.8·d (a generous feasible region).
    struct Sphere {
        d: usize,
    }

    impl SizingProblem for Sphere {
        fn dim(&self) -> usize {
            self.d
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; self.d], vec![1.0; self.d])
        }
        fn num_constraints(&self) -> usize {
            self.d + 1
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            let objective = x.iter().map(|v| (v - 0.3).powi(2)).sum();
            let mut constraints: Vec<f64> = x.iter().map(|v| 0.1 - v).collect();
            constraints.push(x.iter().sum::<f64>() - 0.8 * self.d as f64);
            SpecResult {
                failure: None,
                objective,
                constraints,
            }
        }
    }

    /// A tight feasible band: ‖x − 0.7‖∞ ≤ 0.06 — random search needs
    /// ~(1/0.12)^d samples; a surrogate method should need far fewer.
    struct Band {
        d: usize,
    }

    impl SizingProblem for Band {
        fn dim(&self) -> usize {
            self.d
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; self.d], vec![1.0; self.d])
        }
        fn num_constraints(&self) -> usize {
            self.d
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            SpecResult {
                failure: None,
                objective: x.iter().sum(),
                constraints: x.iter().map(|v| (v - 0.7).abs() - 0.06).collect(),
            }
        }
    }

    fn quick_cfg() -> DnnOptConfig {
        DnnOptConfig {
            critic_epochs: 150,
            actor_epochs: 60,
            critic_batch: 128,
            hidden: 32,
            ..Default::default()
        }
    }

    #[test]
    fn respects_budget_and_contract() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let opt = DnnOpt::new(quick_cfg());
        let run = opt.run(&p, &fom, 40, StopPolicy::Exhaust, 0);
        assert_eq!(run.history.len(), 40);
        assert!(run.model_time > Duration::ZERO);
    }

    #[test]
    fn finds_feasible_sphere_quickly() {
        let p = Sphere { d: 4 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let opt = DnnOpt::new(quick_cfg());
        let run = opt.run(&p, &fom, 100, StopPolicy::FirstFeasible, 2);
        assert!(run.sims_to_feasible().is_some());
    }

    #[test]
    fn improves_objective_beyond_initial_sampling() {
        let p = Sphere { d: 5 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let opt = DnnOpt::new(quick_cfg());
        let run = opt.run(&p, &fom, 120, StopPolicy::Exhaust, 3);
        let init_best = run.history.best_trace()[opt.config.n_init - 1];
        let final_best = *run.history.best_trace().last().unwrap();
        assert!(
            final_best < 0.6 * init_best,
            "no surrogate progress: {init_best} -> {final_best}"
        );
    }

    #[test]
    fn beats_random_search_on_tight_band() {
        let p = Band { d: 4 };
        let fom = Fom::uniform(0.1, p.num_constraints());
        let opt = DnnOpt::new(quick_cfg());
        let dnn = opt.run(&p, &fom, 250, StopPolicy::Exhaust, 5);
        let rnd = opt::RandomSearch.run(&p, &fom, 250, StopPolicy::Exhaust, 5);
        let dnn_best = dnn.history.best().unwrap().fom;
        let rnd_best = rnd.history.best().unwrap().fom;
        assert!(
            dnn_best < rnd_best,
            "DNN-Opt {dnn_best} should beat random {rnd_best} on the band"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let p = Sphere { d: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let opt = DnnOpt::new(quick_cfg());
        let a = opt.run(&p, &fom, 35, StopPolicy::Exhaust, 7);
        let b = opt.run(&p, &fom, 35, StopPolicy::Exhaust, 7);
        assert_eq!(a.history.best_trace(), b.history.best_trace());
    }

    /// A corner-indexed Sphere: corner `k` shifts the feasibility floor
    /// up, so the worst case is governed by the last corner.
    struct CorneredSphere {
        d: usize,
        k: usize,
    }

    impl SizingProblem for CorneredSphere {
        fn dim(&self) -> usize {
            self.d
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; self.d], vec![1.0; self.d])
        }
        fn num_constraints(&self) -> usize {
            self.d
        }
        fn num_corners(&self) -> usize {
            self.k
        }
        fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
            let shift = 0.05 * k as f64;
            SpecResult {
                failure: None,
                objective: x.iter().map(|v| (v - 0.3).powi(2)).sum::<f64>() + shift,
                constraints: x.iter().map(|v| 0.1 + shift - v).collect(),
            }
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            opt::evaluate_worst_case(self, x)
        }
    }

    #[test]
    fn corner_resolved_critic_optimizes_the_corner_plane() {
        let p = CorneredSphere { d: 3, k: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let cfg = DnnOptConfig {
            corner_critic: true,
            ..quick_cfg()
        };
        let run = DnnOpt::new(cfg).run(&p, &fom, 60, StopPolicy::Exhaust, 11);
        assert_eq!(run.history.len(), 60);
        // Every entry carries the per-corner records the wide critic
        // trained on.
        for e in run.history.entries() {
            assert_eq!(e.corner_specs.len(), 3);
            assert_eq!(e.corner_vector().len(), 1 + 3 * p.num_constraints());
        }
        // A feasible design satisfies the *tightest* corner.
        let best = run.history.best_feasible().expect("feasible on the plane");
        for v in &best.x {
            assert!(*v >= 0.1 + 0.05 * 2.0 - 1e-9, "worst corner enforced: {v}");
        }
        // Determinism contract holds in the corner-resolved mode too.
        let cfg2 = DnnOptConfig {
            corner_critic: true,
            ..quick_cfg()
        };
        let again = DnnOpt::new(cfg2).run(&p, &fom, 60, StopPolicy::Exhaust, 11);
        assert_eq!(run.history.best_trace(), again.history.best_trace());
    }

    #[test]
    fn aggregate_mode_still_runs_corner_problems() {
        let p = CorneredSphere { d: 2, k: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let run = DnnOpt::new(quick_cfg()).run(&p, &fom, 40, StopPolicy::Exhaust, 3);
        assert_eq!(run.history.len(), 40);
        // The aggregate critic sees the worst-case (1 + m) spec vector,
        // but per-corner records are still attached to the history.
        assert!(run
            .history
            .entries()
            .iter()
            .all(|e| e.corner_specs.len() == 2));
        assert!(run.history.best_feasible().is_some());
    }

    #[test]
    fn survives_failed_simulations() {
        /// A problem whose evaluations fail in half the space.
        struct Flaky;
        impl SizingProblem for Flaky {
            fn dim(&self) -> usize {
                2
            }
            fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
                (vec![0.0; 2], vec![1.0; 2])
            }
            fn num_constraints(&self) -> usize {
                1
            }
            fn evaluate(&self, x: &[f64]) -> SpecResult {
                if x[0] > 0.5 {
                    SpecResult::failed(1)
                } else {
                    SpecResult {
                        failure: None,
                        objective: (x[0] - 0.25).powi(2) + (x[1] - 0.5).powi(2),
                        constraints: vec![0.1 - x[1]],
                    }
                }
            }
        }
        let fom = Fom::uniform(1.0, 1);
        let opt = DnnOpt::new(quick_cfg());
        let run = opt.run(&Flaky, &fom, 60, StopPolicy::Exhaust, 4);
        assert_eq!(run.history.len(), 60);
        assert!(run.history.best_feasible().is_some());
    }
}
