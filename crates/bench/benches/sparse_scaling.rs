//! Criterion benchmarks of the post-layout-scale sparse engine: scalar
//! Gilbert–Peierls refactorization vs the supernodal GEMM-blocked path on
//! extraction-style RC meshes (`circuits::mesh::build_rc_grid`) at
//! n = 200 / 500 / 1000 unknowns. Each iteration is one scan-free numeric
//! factorization — exactly what the simulator pays per Newton step once
//! the pivot sequence is recorded (the triangular solves are identical on
//! both paths and timed elsewhere). The complex rows replay every
//! `G + jωC` point of the mesh AC sweep; the `_t{N}` rows time the
//! etree-parallel replay at fixed worker counts. `BENCH_baseline.json`
//! records the reference numbers (acceptance targets: real supernodal
//! ≥2× and complex supernodal ≥1.8× at n ≥ 500).

use bench::{mesh_ac_systems, mesh_dc_system};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use linalg::{SparseComplexLu, SparseLu, SupernodalMode};

fn bench_sparse_scaling(c: &mut Criterion) {
    for n in [200usize, 500, 1000] {
        let (csc, z) = mesh_dc_system(n);

        // Both kernels must agree before their times mean anything, and
        // the blocked path must actually be exercising dense panels.
        {
            let mut scalar = SparseLu::new();
            scalar.set_supernodal_mode(SupernodalMode::ForceScalar);
            scalar.factor(&csc).unwrap();
            let mut xs = Vec::new();
            scalar.solve_into(&z, &mut xs).unwrap();
            let mut blocked = SparseLu::new();
            blocked.set_supernodal_mode(SupernodalMode::ForceBlocked);
            blocked.factor(&csc).unwrap();
            assert!(blocked.supernodal_active(), "blocked path not engaged");
            assert!(
                blocked.wide_supernodes() > 0,
                "mesh produced no dense panels"
            );
            let mut xb = Vec::new();
            blocked.solve_into(&z, &mut xb).unwrap();
            for (a, b) in xs.iter().zip(&xb) {
                assert!((a - b).abs() <= 1e-10 * a.abs().max(1.0), "kernel mismatch");
            }
        }

        for (suffix, mode) in [
            ("scalar", SupernodalMode::ForceScalar),
            ("supernodal", SupernodalMode::ForceBlocked),
        ] {
            c.bench_function(&format!("newton_dc_kernel_mesh_n{n}_{suffix}"), |b| {
                let mut slu = SparseLu::new();
                slu.set_supernodal_mode(mode);
                slu.factor(&csc).unwrap();
                b.iter(|| {
                    slu.refactor_into(black_box(&csc)).unwrap();
                })
            });
        }
    }
}

fn bench_ac_mesh_scaling(c: &mut Criterion) {
    for n in [200usize, 500, 1000] {
        let systems = mesh_ac_systems(n);

        // The complex kernels must agree before their times mean anything.
        {
            let (csc, z) = &systems[0];
            let mut scalar = SparseComplexLu::new();
            scalar.set_supernodal_mode(SupernodalMode::ForceScalar);
            scalar.factor(csc).unwrap();
            let mut xs = Vec::new();
            scalar.solve_into(z, &mut xs).unwrap();
            let mut blocked = SparseComplexLu::new();
            blocked.set_supernodal_mode(SupernodalMode::ForceBlocked);
            blocked.factor(csc).unwrap();
            assert!(blocked.supernodal_active(), "blocked path not engaged");
            let mut xb = Vec::new();
            blocked.solve_into(z, &mut xb).unwrap();
            for (a, b) in xs.iter().zip(&xb) {
                assert!(
                    (*a - *b).abs() <= 1e-10 * a.abs().max(1.0),
                    "complex kernel mismatch"
                );
            }
        }

        for (suffix, mode) in [
            ("scalar", SupernodalMode::ForceScalar),
            ("supernodal", SupernodalMode::ForceBlocked),
        ] {
            c.bench_function(&format!("ac_sweep_kernel_mesh_n{n}_{suffix}"), |b| {
                let mut slu = SparseComplexLu::new();
                slu.set_supernodal_mode(mode);
                slu.factor(&systems[0].0).unwrap();
                b.iter(|| {
                    for (csc, _) in &systems {
                        slu.refactor_into(black_box(csc)).unwrap();
                    }
                })
            });
        }
    }
}

fn bench_parallel_replay(c: &mut Criterion) {
    let (csc, _z) = mesh_dc_system(1000);
    for threads in [1usize, 2, 4, 8] {
        c.bench_function(
            &format!("newton_dc_kernel_mesh_n1000_supernodal_t{threads}"),
            |b| {
                linalg::pool::set_max_threads(threads);
                let mut slu = SparseLu::new();
                slu.set_supernodal_mode(SupernodalMode::ForceBlocked);
                slu.factor(&csc).unwrap();
                b.iter(|| {
                    slu.refactor_into(black_box(&csc)).unwrap();
                });
                linalg::pool::set_max_threads(0);
            },
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sparse_scaling, bench_ac_mesh_scaling, bench_parallel_replay
}
criterion_main!(benches);
