//! Evaluation-level failure taxonomy.
//!
//! The optimizer layer cannot depend on the simulator crate, so it carries
//! its own [`FailureDiag`]: a superset of the solver taxonomy (testbenches
//! convert the simulator's diagnosis one-to-one) extended with the failure
//! modes that only exist at the evaluation boundary — setup errors that
//! never reach a solver, and worker panics caught by the batch evaluator.
//! Diagnoses ride inside [`crate::SpecResult`] so every algorithm
//! (DNN-Opt, DE, BO) records them for free, and
//! [`crate::History::robustness_report`] aggregates them into the
//! batch-level [`RobustnessReport`].

/// Why one candidate×corner evaluation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// A pivot collapsed during LU factorization.
    Singular,
    /// Newton-Raphson exhausted its iteration budget.
    NoConvergence,
    /// A solve produced a non-finite unknown vector.
    NanResidual,
    /// Transient step halving hit its limit without converging.
    StepUnderflow,
    /// The evaluation failed before (or outside) any nonlinear solve:
    /// netlist construction, measurement extraction, bad analysis window.
    Setup,
    /// The testbench panicked; the batch evaluator caught it and mapped the
    /// candidate to a failed outcome instead of killing the batch.
    Panic,
}

impl FailureKind {
    /// Short lower-case label (`singular`, `panic`, …).
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Singular => "singular",
            FailureKind::NoConvergence => "no-convergence",
            FailureKind::NanResidual => "nan-residual",
            FailureKind::StepUnderflow => "step-underflow",
            FailureKind::Setup => "setup",
            FailureKind::Panic => "panic",
        }
    }

    /// All kinds, in the order reports tabulate them.
    pub const ALL: [FailureKind; 6] = [
        FailureKind::Singular,
        FailureKind::NoConvergence,
        FailureKind::NanResidual,
        FailureKind::StepUnderflow,
        FailureKind::Setup,
        FailureKind::Panic,
    ];
}

/// The deepest solver recovery-ladder stage the failing evaluation reached
/// (mirrors the simulator's ladder; `None` for failures that never entered
/// a solver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryStage {
    /// No recovery ladder applies (setup errors, panics).
    None,
    /// Plain damped Newton-Raphson.
    PlainNr,
    /// Gmin stepping continuation.
    GminStepping,
    /// Source stepping continuation.
    SourceStepping,
    /// Transient timestep halving.
    StepHalving,
    /// Direct small-signal solve (AC / noise) with no ladder.
    SmallSignal,
}

impl RecoveryStage {
    /// Short lower-case label (`plain-nr`, `none`, …).
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStage::None => "none",
            RecoveryStage::PlainNr => "plain-nr",
            RecoveryStage::GminStepping => "gmin-stepping",
            RecoveryStage::SourceStepping => "source-stepping",
            RecoveryStage::StepHalving => "step-halving",
            RecoveryStage::SmallSignal => "small-signal",
        }
    }

    /// All stages, in the order reports tabulate them.
    pub const ALL: [RecoveryStage; 6] = [
        RecoveryStage::None,
        RecoveryStage::PlainNr,
        RecoveryStage::GminStepping,
        RecoveryStage::SourceStepping,
        RecoveryStage::StepHalving,
        RecoveryStage::SmallSignal,
    ];
}

/// Structured diagnosis of one failed evaluation, attached to the
/// [`crate::SpecResult`] failure placeholder it explains.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureDiag {
    /// What killed the evaluation.
    pub kind: FailureKind,
    /// Which analysis or phase failed (`"dc operating point"`,
    /// `"open-loop ac"`, `"panic: <message>"`, …).
    pub analysis: String,
    /// Deepest recovery-ladder stage reached before giving up.
    pub stage: RecoveryStage,
    /// Newton iterations spent across the whole recovery ladder.
    pub iterations: usize,
    /// Transient step halvings spent (zero outside transient).
    pub halvings: usize,
    /// True when the failure was forced by a deterministic fault plan
    /// rather than arising from the numerics.
    pub injected: bool,
}

impl FailureDiag {
    /// Diagnosis for a failure that never reached a solver.
    pub fn setup(analysis: impl Into<String>) -> Self {
        FailureDiag {
            kind: FailureKind::Setup,
            analysis: analysis.into(),
            stage: RecoveryStage::None,
            iterations: 0,
            halvings: 0,
            injected: false,
        }
    }

    /// Diagnosis for a caught worker panic.
    pub fn panic(message: impl Into<String>) -> Self {
        FailureDiag {
            kind: FailureKind::Panic,
            analysis: format!("panic: {}", message.into()),
            stage: RecoveryStage::None,
            iterations: 0,
            halvings: 0,
            injected: false,
        }
    }
}

impl std::fmt::Display for FailureDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failed: {} at {} stage after {} NR iterations, {} halvings{}",
            self.analysis,
            self.kind.label(),
            self.stage.label(),
            self.iterations,
            self.halvings,
            if self.injected { " (injected)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_the_taxonomy() {
        let s = FailureDiag::setup("netlist");
        assert_eq!(s.kind, FailureKind::Setup);
        assert_eq!(s.stage, RecoveryStage::None);
        let p = FailureDiag::panic("index out of bounds");
        assert_eq!(p.kind, FailureKind::Panic);
        assert!(p.analysis.contains("index out of bounds"));
    }

    #[test]
    fn display_carries_the_taxonomy() {
        let d = FailureDiag {
            kind: FailureKind::StepUnderflow,
            analysis: "transient".into(),
            stage: RecoveryStage::StepHalving,
            iterations: 37,
            halvings: 9,
            injected: true,
        };
        let s = d.to_string();
        assert!(s.contains("step-underflow"));
        assert!(s.contains("step-halving"));
        assert!(s.contains("37"));
        assert!(s.contains("(injected)"));
    }

    #[test]
    fn labels_are_distinct() {
        for (i, a) in FailureKind::ALL.iter().enumerate() {
            for b in &FailureKind::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
        for (i, a) in RecoveryStage::ALL.iter().enumerate() {
            for b in &RecoveryStage::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
