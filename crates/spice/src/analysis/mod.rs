//! Circuit analyses: DC operating point/sweep, AC, transient, and noise.

pub mod ac;
pub mod dc;
pub mod noise;
pub mod tran;
