//! Structured failure diagnostics for the nonlinear solvers.
//!
//! Every analysis failure used to collapse into an opaque `None` deep in
//! the Newton loop, erasing *why* the solve died (a singular factor looks
//! identical to a NaN residual). [`FailureDiag`] preserves the taxonomy the
//! robustness layer needs: the failure kind, which analysis produced it,
//! how far down the recovery ladder the engine got, and how much retry
//! budget (Newton iterations, transient step halvings) was burned before
//! giving up. It travels out of the solvers inside
//! [`crate::SpiceError::Solver`] so testbenches can propagate it to the
//! optimizer instead of a bare failure placeholder.

/// Why a nonlinear solve failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// A pivot collapsed during LU factorization (floating node, source
    /// loop, or a numerically degenerate linearization).
    Singular,
    /// Newton-Raphson ran out of iterations without meeting tolerance.
    NoConvergence,
    /// The linear solve produced a non-finite unknown vector.
    NanResidual,
    /// Transient step halving hit `max_step_halvings` without converging.
    StepUnderflow,
}

impl FailureKind {
    /// Short lower-case label (`singular`, `no-convergence`, …).
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Singular => "singular",
            FailureKind::NoConvergence => "no-convergence",
            FailureKind::NanResidual => "nan-residual",
            FailureKind::StepUnderflow => "step-underflow",
        }
    }
}

/// The deepest recovery-ladder stage a failed solve reached before the
/// engine gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LadderStage {
    /// Plain damped Newton-Raphson, no continuation.
    PlainNr,
    /// Gmin stepping (continuation in the diagonal loading conductance).
    GminStepping,
    /// Source stepping (continuation in the source scale factor).
    SourceStepping,
    /// Transient timestep halving.
    StepHalving,
    /// Direct linear solve with no Newton ladder (AC / noise analyses).
    SmallSignal,
}

impl LadderStage {
    /// Short lower-case label (`plain-nr`, `gmin-stepping`, …).
    pub fn label(self) -> &'static str {
        match self {
            LadderStage::PlainNr => "plain-nr",
            LadderStage::GminStepping => "gmin-stepping",
            LadderStage::SourceStepping => "source-stepping",
            LadderStage::StepHalving => "step-halving",
            LadderStage::SmallSignal => "small-signal",
        }
    }
}

/// Structured diagnosis of one failed analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureDiag {
    /// What ultimately killed the solve.
    pub kind: FailureKind,
    /// Which analysis failed (`"dc operating point"`, `"transient"`, …).
    pub analysis: &'static str,
    /// Deepest recovery-ladder stage reached.
    pub stage: LadderStage,
    /// Total Newton iterations spent across the whole ladder (including
    /// successful continuation steps that preceded the fatal one).
    pub iterations: usize,
    /// Transient step halvings spent (zero outside transient analysis).
    pub halvings: usize,
    /// True when the failure was forced by the deterministic fault plan
    /// ([`crate::fault`]) rather than arising from the numerics.
    pub injected: bool,
}

impl std::fmt::Display for FailureDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failed: {} at {} stage after {} NR iterations, {} halvings{}",
            self.analysis,
            self.kind.label(),
            self.stage.label(),
            self.iterations,
            self.halvings,
            if self.injected { " (injected)" } else { "" }
        )
    }
}

/// Failure of one `newton_loop` call: the kind plus how many iterations it
/// burned. The callers (the DC ladder, the transient halving loop) fold
/// these into a full [`FailureDiag`] with the stage they were driving.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NewtonFailure {
    pub kind: FailureKind,
    pub iterations: usize,
    pub injected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_taxonomy() {
        let d = FailureDiag {
            kind: FailureKind::Singular,
            analysis: "dc operating point",
            stage: LadderStage::SourceStepping,
            iterations: 120,
            halvings: 0,
            injected: true,
        };
        let s = d.to_string();
        assert!(s.contains("singular"));
        assert!(s.contains("source-stepping"));
        assert!(s.contains("120"));
        assert!(s.contains("injected"));
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            FailureKind::Singular,
            FailureKind::NoConvergence,
            FailureKind::NanResidual,
            FailureKind::StepUnderflow,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
