//! Sensitivity analysis on the level shifter: the 16-variable superset is
//! pruned to the critical set (paper §II-C / Table V).
//!
//! Run with `cargo run --release --example sensitivity_pruning`.

use circuits::LevelShifter;
use dnn_opt::SensitivityReport;
use opt::SizingProblem;

fn main() {
    let ls = LevelShifter::new();
    println!(
        "level shifter: {} variables, {} measurements × {} supply corners = {} specs",
        ls.dim(),
        ls.num_constraints(),
        ls.num_corners(),
        ls.num_constraints() * ls.num_corners()
    );
    let report = SensitivityReport::compute(&ls, &ls.nominal(), 0.05);
    println!("\n{}", report.table());
    let critical = report.critical_variables(0.1);
    let names = ls.variable_names();
    println!("critical ({}):", critical.len());
    for &j in &critical {
        println!("  {}", names[j]);
    }
    println!("\npruned ({}):", ls.dim() - critical.len());
    for j in 0..ls.dim() {
        if !critical.contains(&j) {
            println!("  {}", names[j]);
        }
    }
}
