//! An MNA-based analog circuit simulator.
//!
//! This crate is the "commercial SPICE" substitute for the DNN-Opt
//! reproduction: the optimizers in the workspace treat it as the expensive
//! black-box evaluator that the paper calls "the circuit simulator". It
//! implements the analyses the paper's measurements require:
//!
//! - [`op`] / [`dc_sweep`] — nonlinear DC solution by damped Newton-Raphson
//!   with gmin stepping and source stepping fallbacks;
//! - [`ac`] — complex small-signal frequency sweeps on the pattern-shared
//!   sparse complex solver (dense fallback for small systems);
//! - [`transient`] — trapezoidal time-domain integration with breakpoint
//!   handling and adaptive step halving;
//! - [`noise`] — adjoint-based output-noise analysis (thermal + flicker).
//!
//! Devices: resistors, capacitors, independent V/I sources (DC, pulse, sine,
//! PWL waveforms), VCVS/VCCS, and a smoothed Level-1+ MOSFET model
//! ([`MosModel`]) with subthreshold conduction, channel-length modulation,
//! body effect, constant Meyer-style capacitances and channel noise.
//!
//! # Quick start
//!
//! ```
//! use spice::{Circuit, SimOptions, Waveform};
//!
//! // A 2:1 resistive divider.
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_vsource("V1", vin, spice::GND, Waveform::Dc(2.0))?;
//! ckt.add_resistor("R1", vin, out, 1e3)?;
//! ckt.add_resistor("R2", out, spice::GND, 1e3)?;
//!
//! let op = spice::op(&ckt, &SimOptions::default())?;
//! assert!((op.voltage(out) - 1.0).abs() < 1e-9);
//! # Ok::<(), spice::SpiceError>(())
//! ```

pub mod analysis;
pub mod diag;
mod error;
pub mod fault;
pub mod mos;
mod netlist;
mod options;
pub mod stamp;
mod waveform;
mod workspace;

pub use analysis::ac::{ac, ac_with_workspace, log_freqs, AcSweep};
pub use analysis::dc::{dc_sweep, op, op_with_guess, op_with_workspace, MosOp, OpPoint};
pub use analysis::noise::{noise, noise_with_workspace, NoiseResult};
pub use analysis::tran::{transient, transient_with_workspace, TranResult};
pub use diag::{FailureDiag, FailureKind, LadderStage};
pub use error::SpiceError;
pub use mos::{MosModel, MosPolarity, MosRegion, T_NOM};
pub use netlist::{Circuit, Device, NodeId, GND};
pub use options::SimOptions;
pub use waveform::Waveform;
pub use workspace::{lease_workspace, NewtonWorkspace, PooledWorkspace};
