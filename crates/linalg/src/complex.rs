//! Minimal complex arithmetic and a complex LU solver for AC analysis.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use linalg::C64;
///
/// let a = C64::new(1.0, 2.0);
/// let b = C64::new(3.0, -1.0);
/// let p = a * b;
/// assert_eq!(p, C64::new(5.0, 5.0));
/// assert!((a.abs() - 5.0_f64.sqrt()).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> C64 {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse.
    ///
    /// Returns infinities when `self` is zero, mirroring `f64` division.
    pub fn recip(self) -> C64 {
        let d = self.abs_sq();
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// True if either component is NaN or infinite.
    pub fn is_non_finite(self) -> bool {
        !self.re.is_finite() || !self.im.is_finite()
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, r: C64) -> C64 {
        C64::new(self.re + r.re, self.im + r.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, r: C64) -> C64 {
        C64::new(self.re - r.re, self.im - r.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, r: C64) -> C64 {
        C64::new(
            self.re * r.re - self.im * r.im,
            self.re * r.im + self.im * r.re,
        )
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, s: f64) -> C64 {
        C64::new(self.re * s, self.im * s)
    }
}

impl Div for C64 {
    type Output = C64;
    fn div(self, r: C64) -> C64 {
        self * r.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, r: C64) {
        self.re += r.re;
        self.im += r.im;
    }
}

impl SubAssign for C64 {
    fn sub_assign(&mut self, r: C64) {
        self.re -= r.re;
        self.im -= r.im;
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl std::fmt::Display for C64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Dense complex LU factorization with partial pivoting, used for the AC
/// small-signal MNA system `(G + jωC)·x = b`.
///
/// # Example
///
/// ```
/// use linalg::{C64, ComplexLu};
///
/// // [[1, i], [0, 2]] x = [1+i, 2] -> x = [1, 1]
/// let a = vec![
///     vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0)],
///     vec![C64::new(0.0, 0.0), C64::new(2.0, 0.0)],
/// ];
/// let lu = ComplexLu::factor(a).expect("non-singular");
/// let x = lu.solve(&[C64::new(1.0, 1.0), C64::new(2.0, 0.0)]);
/// assert!((x[0] - C64::new(1.0, 0.0)).abs() < 1e-12);
/// assert!((x[1] - C64::new(1.0, 0.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ComplexLu {
    lu: Vec<Vec<C64>>,
    perm: Vec<usize>,
}

impl ComplexLu {
    /// Factors a square complex matrix given as rows.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FactorError::Singular`] when a pivot is numerically
    /// zero, and [`crate::FactorError::Shape`] for ragged or non-square
    /// input.
    pub fn factor(mut a: Vec<Vec<C64>>) -> Result<Self, crate::FactorError> {
        let n = a.len();
        if a.iter().any(|row| row.len() != n) {
            let cols = a.first().map_or(0, |r| r.len());
            return Err(crate::FactorError::Shape { rows: n, cols });
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            let mut max = a[k][k].abs();
            for (i, row) in a.iter().enumerate().skip(k + 1) {
                let v = row[k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if !(max > 1e-300) {
                return Err(crate::FactorError::Singular { pivot: k });
            }
            if p != k {
                a.swap(p, k);
                perm.swap(p, k);
            }
            let pivot = a[k][k];
            for i in (k + 1)..n {
                let m = a[i][k] / pivot;
                a[i][k] = m;
                if m != C64::ZERO {
                    for j in (k + 1)..n {
                        let u = a[k][j];
                        a[i][j] -= m * u;
                    }
                }
            }
        }
        Ok(ComplexLu { lu: a, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.len()
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[C64]) -> Vec<C64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        let mut x: Vec<C64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[i][j] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[i][j] * x[j];
            }
            x[i] = s / self.lu[i][i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(2.0, -3.0);
        assert_eq!(a + C64::ZERO, a);
        assert_eq!(a * C64::ONE, a);
        assert_eq!(a - a, C64::ZERO);
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
        let r = a * a.recip();
        assert!((r - C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn conj_and_arg() {
        let a = C64::new(0.0, 1.0);
        assert_eq!(a.conj(), C64::new(0.0, -1.0));
        assert!((a.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn complex_solve_roundtrip() {
        let a = vec![
            vec![C64::new(2.0, 1.0), C64::new(-1.0, 0.5)],
            vec![C64::new(0.0, -1.0), C64::new(3.0, 2.0)],
        ];
        let b = [C64::new(1.0, 0.0), C64::new(0.0, 1.0)];
        let lu = ComplexLu::factor(a.clone()).unwrap();
        let x = lu.solve(&b);
        // Verify A x == b.
        for i in 0..2 {
            let mut s = C64::ZERO;
            for j in 0..2 {
                s += a[i][j] * x[j];
            }
            assert!((s - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_singular_detected() {
        let a = vec![
            vec![C64::new(1.0, 1.0), C64::new(2.0, 2.0)],
            vec![C64::new(2.0, 2.0), C64::new(4.0, 4.0)],
        ];
        assert!(ComplexLu::factor(a).is_err());
    }

    #[test]
    fn pivoting_in_complex_solver() {
        let a = vec![vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]];
        let lu = ComplexLu::factor(a).unwrap();
        let x = lu.solve(&[C64::real(3.0), C64::real(4.0)]);
        assert!((x[0] - C64::real(4.0)).abs() < 1e-15);
        assert!((x[1] - C64::real(3.0)).abs() < 1e-15);
    }
}
