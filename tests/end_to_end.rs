//! Cross-crate integration tests: the full pipeline from circuits through
//! optimizers, exercised at small budgets.

use circuits::{FoldedCascodeOta, InverterChain, LevelShifter, StrongArmLatch};
use dnn_opt::{DnnOpt, DnnOptConfig, ReducedProblem, SensitivityReport};
use opt::{DifferentialEvolution, Fom, Optimizer, SizingProblem, StopPolicy};

fn quick_cfg() -> DnnOptConfig {
    DnnOptConfig {
        critic_epochs: 120,
        actor_epochs: 40,
        critic_batch: 96,
        hidden: 32,
        ..Default::default()
    }
}

#[test]
fn ota_nominal_is_feasible_and_deterministic() {
    let ota = FoldedCascodeOta::new();
    let a = ota.evaluate(&ota.nominal());
    let b = ota.evaluate(&ota.nominal());
    assert!(
        a.feasible(),
        "shipped OTA design must meet Eq. 9: {:?}",
        a.constraints
    );
    assert_eq!(a, b, "evaluations must be deterministic");
}

#[test]
fn latch_nominal_is_feasible() {
    let latch = StrongArmLatch::new();
    let spec = latch.evaluate(&latch.nominal());
    assert!(
        spec.feasible(),
        "shipped latch design must meet Eq. 10: {:?}",
        spec.constraints
    );
}

#[test]
fn dnn_opt_runs_on_the_real_ota() {
    let ota = FoldedCascodeOta::new();
    let fom = Fom::new(100.0, vec![0.25; ota.num_constraints()]);
    let run = DnnOpt::new(quick_cfg()).run(&ota, &fom, 30, StopPolicy::Exhaust, 0);
    assert_eq!(run.history.len(), 30);
    // Every recorded evaluation carries the full Eq. 9 constraint vector.
    for e in run.history.entries() {
        assert_eq!(e.spec.constraints.len(), 29);
    }
    // The budget is split between LHS initialization and surrogate steps.
    assert!(run.model_time.as_secs_f64() > 0.0);
}

#[test]
fn de_runs_on_the_real_latch() {
    let latch = StrongArmLatch::new();
    let fom = Fom::new(3e4, vec![0.25; latch.num_constraints()]);
    let run = DifferentialEvolution::default().run(&latch, &fom, 40, StopPolicy::Exhaust, 1);
    assert_eq!(run.history.len(), 40);
    assert!(run.history.best().is_some());
}

#[test]
fn sensitivity_prunes_level_shifter_decaps() {
    let ls = LevelShifter::new();
    let report = SensitivityReport::compute(&ls, &ls.nominal(), 0.05);
    let critical = report.critical_variables(0.1);
    let names = ls.variable_names();
    // The rail decap geometry is near-inert by construction; it must be
    // pruned. The pull-downs are load-bearing; they must be kept.
    let kept: Vec<&str> = critical.iter().map(|&j| names[j].as_str()).collect();
    assert!(
        !kept.contains(&"w_decl"),
        "decap width must be pruned, kept: {kept:?}"
    );
    assert!(
        !kept.contains(&"l_decl"),
        "decap length must be pruned, kept: {kept:?}"
    );
    assert!(
        kept.contains(&"w_pd1") || kept.contains(&"w_pd2"),
        "pull-downs are critical, kept: {kept:?}"
    );
    assert!(critical.len() < ls.dim(), "pruning must remove something");
}

#[test]
fn reduced_problem_optimizes_inverter_chain() {
    let inv = InverterChain::new();
    let report = SensitivityReport::compute(&inv, &inv.nominal(), 0.05);
    let critical = report.critical_variables(0.1);
    assert!(!critical.is_empty());
    let reduced = ReducedProblem::new(&inv, inv.nominal(), critical);
    let fom = Fom::uniform(1.0, reduced.num_constraints());
    let run = DnnOpt::new(quick_cfg()).run(&reduced, &fom, 25, StopPolicy::FirstFeasible, 0);
    // The nominal-centered reduced problem starts near feasibility, so a
    // tiny budget suffices.
    assert!(
        run.sims_to_feasible().is_some(),
        "inverter chain should be easy"
    );
}

#[test]
fn fom_traces_are_monotone_for_all_methods() {
    let ota = FoldedCascodeOta::new();
    let fom = Fom::new(100.0, vec![0.25; ota.num_constraints()]);
    for method in [&DifferentialEvolution::default() as &dyn Optimizer] {
        let run = method.run(&ota, &fom, 25, StopPolicy::Exhaust, 2);
        for w in run.history.best_trace().windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "{} trace not monotone", method.name());
        }
    }
}
