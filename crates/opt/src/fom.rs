//! The figure-of-merit function of paper Eq. 4.

use crate::problem::SpecResult;

/// Figure of Merit (paper Eq. 4, lower is better):
///
/// ```text
/// g[f(x)] = w0·f0(x) + Σ_i min(1, max(0, wi·fi(x)))
/// ```
///
/// The `max(0, ·)` clip equates designs once a constraint is met; the
/// `min(1, ·)` clip stops a single badly violated constraint from dominating
/// the sum. A fully feasible design therefore has `g = w0·f0`, and each
/// violated constraint adds at most 1.
///
/// # Example
///
/// ```
/// use opt::{Fom, SpecResult};
///
/// let fom = Fom::new(0.1, vec![1.0, 1.0]);
/// let feasible = SpecResult { failure: None, objective: 2.0, constraints: vec![-1.0, 0.0] };
/// assert!((fom.value(&feasible) - 0.2).abs() < 1e-12);
/// let violated = SpecResult { failure: None, objective: 2.0, constraints: vec![50.0, 0.5] };
/// assert!((fom.value(&violated) - (0.2 + 1.0 + 0.5)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fom {
    /// Objective weight `w0`.
    pub w0: f64,
    /// Per-constraint weights `wi`.
    pub weights: Vec<f64>,
}

impl Fom {
    /// Creates a FoM with explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn new(w0: f64, weights: Vec<f64>) -> Self {
        assert!(w0.is_finite() && w0 >= 0.0, "w0 must be non-negative");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "constraint weights must be non-negative"
        );
        Fom { w0, weights }
    }

    /// Uniform weights: `w0 = obj_weight`, all constraint weights 1.
    pub fn uniform(obj_weight: f64, num_constraints: usize) -> Self {
        Self::new(obj_weight, vec![1.0; num_constraints])
    }

    /// Number of constraints this FoM expects.
    pub fn num_constraints(&self) -> usize {
        self.weights.len()
    }

    /// The corner-resolved FoM over a `k`-corner scenario plane: the same
    /// objective weight, with the per-constraint weights tiled once per
    /// corner. Applied to the widened spec vector
    /// `[f0, c_0@corner0, …, c_{m−1}@corner0, c_0@corner1, …]` this is
    /// Eq. 4 where every (constraint, corner) pair is its own spec — a
    /// feasible design still scores `w0·f0`, and each corner a constraint
    /// is violated at adds its own clipped penalty. This is the FoM the
    /// corner-resolved critic mode trains against.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn tiled(&self, k: usize) -> Fom {
        assert!(k >= 1, "a scenario plane has at least one corner");
        let mut weights = Vec::with_capacity(self.weights.len() * k);
        for _ in 0..k {
            weights.extend_from_slice(&self.weights);
        }
        Fom {
            w0: self.w0,
            weights,
        }
    }

    /// Evaluates Eq. 4 on a spec result.
    ///
    /// # Panics
    ///
    /// Panics if the constraint count disagrees with the weights.
    pub fn value(&self, spec: &SpecResult) -> f64 {
        assert_eq!(
            spec.constraints.len(),
            self.weights.len(),
            "constraint count mismatch"
        );
        let mut g = self.w0 * spec.objective;
        for (c, w) in spec.constraints.iter().zip(&self.weights) {
            g += (w * c).clamp(0.0, 1.0);
        }
        g
    }

    /// Evaluates Eq. 4 on the raw `[f0, f1, …, fm]` vector layout used by
    /// the critic network.
    ///
    /// # Panics
    ///
    /// Panics if `f.len() != 1 + num_constraints`.
    pub fn value_of_vector(&self, f: &[f64]) -> f64 {
        assert_eq!(
            f.len(),
            1 + self.weights.len(),
            "spec vector length mismatch"
        );
        let mut g = self.w0 * f[0];
        for (c, w) in f[1..].iter().zip(&self.weights) {
            g += (w * c).clamp(0.0, 1.0);
        }
        g
    }

    /// Eq. 4 value together with its (sub)gradient with respect to the spec
    /// vector `[f0, f1, …, fm]` — the derivative the actor-network training
    /// backpropagates through the critic. At the clip corners the
    /// zero-branch subgradient is chosen.
    pub fn value_and_grad(&self, f: &[f64]) -> (f64, Vec<f64>) {
        let mut grad = vec![0.0; f.len()];
        let g = self.value_and_grad_into(f, &mut grad);
        (g, grad)
    }

    /// [`Fom::value_and_grad`] writing the gradient into a caller-owned
    /// slice — the allocation-free path of the actor's training loop.
    ///
    /// # Panics
    ///
    /// Panics if `f.len()` or `grad.len()` differs from
    /// `1 + num_constraints`.
    pub fn value_and_grad_into(&self, f: &[f64], grad: &mut [f64]) -> f64 {
        assert_eq!(
            f.len(),
            1 + self.weights.len(),
            "spec vector length mismatch"
        );
        assert_eq!(grad.len(), f.len(), "gradient length mismatch");
        let mut g = self.w0 * f[0];
        grad[0] = self.w0;
        for (i, (c, w)) in f[1..].iter().zip(&self.weights).enumerate() {
            let u = w * c;
            g += u.clamp(0.0, 1.0);
            grad[i + 1] = if u > 0.0 && u < 1.0 { *w } else { 0.0 };
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(obj: f64, cons: &[f64]) -> SpecResult {
        SpecResult {
            failure: None,
            objective: obj,
            constraints: cons.to_vec(),
        }
    }

    #[test]
    fn feasible_design_scores_objective_only() {
        let fom = Fom::uniform(1.0, 3);
        let s = spec(0.42, &[-1.0, -0.5, 0.0]);
        assert!((fom.value(&s) - 0.42).abs() < 1e-15);
    }

    #[test]
    fn violations_are_clipped_at_one() {
        let fom = Fom::uniform(0.0, 2);
        let s = spec(0.0, &[1e9, 1e9]);
        assert!((fom.value(&s) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_violations_add_linearly() {
        let fom = Fom::new(0.0, vec![2.0, 4.0]);
        let s = spec(0.0, &[0.25, 0.1]); // 2·0.25=0.5, 4·0.1=0.4
        assert!((fom.value(&s) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn value_of_vector_matches_value() {
        let fom = Fom::new(0.3, vec![1.0, 0.5]);
        let s = spec(2.0, &[0.7, -0.2]);
        assert!((fom.value(&s) - fom.value_of_vector(&s.as_vector())).abs() < 1e-15);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let fom = Fom::new(0.3, vec![1.5, 0.5, 2.0]);
        let f = vec![1.2, 0.4, -0.3, 0.15]; // mixes active, inactive, active
        let (_, grad) = fom.value_and_grad(&f);
        let h = 1e-7;
        for i in 0..f.len() {
            let mut fp = f.clone();
            fp[i] += h;
            let mut fm = f.clone();
            fm[i] -= h;
            let fd = (fom.value_of_vector(&fp) - fom.value_of_vector(&fm)) / (2.0 * h);
            assert!(
                (grad[i] - fd).abs() < 1e-6,
                "grad[{i}]: {} vs {}",
                grad[i],
                fd
            );
        }
    }

    #[test]
    fn gradient_is_zero_in_clipped_regions() {
        let fom = Fom::new(0.0, vec![1.0, 1.0]);
        // First constraint deeply satisfied, second saturated at the cap.
        let (_, grad) = fom.value_and_grad(&[0.0, -5.0, 7.0]);
        assert_eq!(grad[1], 0.0);
        assert_eq!(grad[2], 0.0);
    }

    #[test]
    fn fom_decreases_as_violation_shrinks() {
        let fom = Fom::uniform(0.0, 1);
        let worse = fom.value(&spec(0.0, &[0.8]));
        let better = fom.value(&spec(0.0, &[0.2]));
        assert!(better < worse);
    }

    #[test]
    fn tiled_fom_repeats_constraint_weights() {
        let fom = Fom::new(0.5, vec![1.0, 2.0]);
        let wide = fom.tiled(3);
        assert_eq!(wide.w0, 0.5);
        assert_eq!(wide.weights, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(fom.tiled(1), fom);
        // A design feasible at every corner still scores w0·f0.
        let v = [2.0, -1.0, -0.5, -1.0, -0.5, -1.0, -0.5];
        assert!((wide.value_of_vector(&v) - 1.0).abs() < 1e-15);
        // One violated (constraint, corner) pair adds its own penalty.
        let mut v2 = v;
        v2[3] = 0.25; // constraint 0 at corner 1, weight 1.0
        assert!((wide.value_of_vector(&v2) - 1.25).abs() < 1e-15);
    }

    #[test]
    fn value_and_grad_cannot_drift_from_the_in_place_kernel() {
        // The allocating variant is a thin wrapper over
        // `value_and_grad_into`; this locks the bit-equality in so a future
        // "optimization" reintroducing a second kernel fails loudly.
        let fom = Fom::new(0.3, vec![1.5, 0.5, 2.0]);
        let f = [1.2, 0.4, -0.3, 0.15];
        let (g_alloc, grad_alloc) = fom.value_and_grad(&f);
        let mut grad = vec![f64::NAN; f.len()];
        let g_into = fom.value_and_grad_into(&f, &mut grad);
        assert_eq!(g_alloc.to_bits(), g_into.to_bits());
        for (a, b) in grad_alloc.iter().zip(&grad) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "constraint count mismatch")]
    fn mismatched_weights_panic() {
        let fom = Fom::uniform(1.0, 2);
        fom.value(&spec(0.0, &[0.0]));
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn negative_weight_rejected() {
        let _ = Fom::new(-1.0, vec![]);
    }
}
