//! Cholesky factorization of symmetric positive-definite matrices.

use crate::{FactorError, Matrix};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// Used by Gaussian-process regression, where `A` is a kernel Gram matrix
/// plus noise jitter; [`Cholesky::log_det`] feeds the log marginal
/// likelihood.
///
/// # Example
///
/// ```
/// use linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = Cholesky::factor(&a).expect("SPD");
/// let x = ch.solve(&[2.0, 1.0]);
/// let r = a.matvec(&x);
/// assert!((r[0] - 2.0).abs() < 1e-12 && (r[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper part is garbage and never read).
    l: Matrix,
}

/// Caller-owned storage for a Cholesky factorization — the allocation-free
/// analogue of [`Cholesky`] for loops that refactor same-sized SPD systems
/// repeatedly (GP refits, covariance updates).
///
/// # Example
///
/// ```
/// use linalg::{Cholesky, CholeskyWorkspace, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let mut ws = CholeskyWorkspace::new(2);
/// Cholesky::factor_into(&a, &mut ws).expect("SPD");
/// let mut x = Vec::new();
/// ws.solve_into(&[2.0, 1.0], &mut x).unwrap();
/// let r = a.matvec(&x);
/// assert!((r[0] - 2.0).abs() < 1e-12 && (r[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyWorkspace {
    /// Lower-triangular factor, row-major `n×n` (upper part unspecified).
    l: Vec<f64>,
    n: usize,
    factored: bool,
}

impl CholeskyWorkspace {
    /// Creates a workspace sized for `n×n` systems; it grows automatically
    /// when factoring larger matrices.
    pub fn new(n: usize) -> Self {
        CholeskyWorkspace {
            l: vec![0.0; n * n],
            n,
            factored: false,
        }
    }

    /// Dimension of the (last) factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` via the two triangular solves, writing into `x`.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if `b.len()` differs from the
    /// factored dimension or no successful factorization is stored.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), FactorError> {
        let n = self.n;
        if !self.factored || b.len() != n {
            return Err(FactorError::Shape {
                rows: b.len(),
                cols: n,
            });
        }
        x.clear();
        x.extend_from_slice(b);
        // Forward substitution L·y = b.
        for i in 0..n {
            let (head, tail) = x.split_at_mut(i);
            let row = &self.l[i * n..i * n + i];
            let mut s = tail[0];
            for (l, y) in row.iter().zip(head.iter()) {
                s -= l * y;
            }
            tail[0] = s / self.l[i * n + i];
        }
        // Back substitution Lᵀ·x = y (column access on the row-major L).
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.l[j * n + i] * x[j];
            }
            x[i] = s / self.l[i * n + i];
        }
        Ok(())
    }

    /// Solves `A·x = b`, validating the right-hand side first — the
    /// allocating convenience over [`CholeskyWorkspace::solve_into`],
    /// mirroring [`crate::Lu::try_solve`].
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if `b.len()` differs from the
    /// factored dimension or no successful factorization is stored.
    pub fn try_solve(&self, b: &[f64]) -> Result<Vec<f64>, FactorError> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·X = B` column by column, validating the shape first,
    /// mirroring [`crate::Lu::try_solve_matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if `b.rows()` differs from the
    /// factored dimension or no successful factorization is stored.
    pub fn try_solve_matrix(&self, b: &Matrix) -> Result<Matrix, FactorError> {
        if !self.factored || b.rows() != self.n {
            return Err(FactorError::Shape {
                rows: b.rows(),
                cols: b.cols(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        let mut col = Vec::with_capacity(b.rows());
        let mut x = Vec::new();
        for j in 0..b.cols() {
            col.clear();
            col.extend((0..b.rows()).map(|i| b[(i, j)]));
            self.solve_into(&col, &mut x)?;
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Log-determinant of `A`: `2·Σ log L[i,i]`.
    ///
    /// # Panics
    ///
    /// Panics if no successful factorization is stored.
    pub fn log_det(&self) -> f64 {
        assert!(self.factored, "no factorization stored");
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix into caller-owned
    /// storage without allocating (once the workspace has capacity). Same
    /// operations in the same order as [`Cholesky::factor`], so the factors
    /// are bit-identical.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Cholesky::factor`]. A failed factorization
    /// invalidates the workspace until the next successful one.
    pub fn factor_into(a: &Matrix, ws: &mut CholeskyWorkspace) -> Result<(), FactorError> {
        if a.rows() != a.cols() {
            return Err(FactorError::Shape {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        ws.n = n;
        ws.factored = false;
        ws.l.clear();
        ws.l.extend_from_slice(a.as_slice());
        let l = &mut ws.l[..n * n];
        for j in 0..n {
            let mut d = l[j * n + j];
            for k in 0..j {
                let v = l[j * n + k];
                d -= v * v;
            }
            if !(d > 0.0) {
                return Err(FactorError::NotPositiveDefinite { order: j + 1 });
            }
            let d = d.sqrt();
            l[j * n + j] = d;
            let (top, bottom) = l.split_at_mut((j + 1) * n);
            let row_j = &top[j * n..j * n + j];
            for i in (j + 1)..n {
                let row_i = &mut bottom[(i - j - 1) * n..(i - j) * n];
                let mut s = row_i[j];
                for (lik, ljk) in row_i[..j].iter().zip(row_j) {
                    s -= lik * ljk;
                }
                row_i[j] = s / d;
            }
        }
        ws.factored = true;
        Ok(())
    }
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed, not
    /// checked.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] for non-square input, or
    /// [`FactorError::NotPositiveDefinite`] if a diagonal entry becomes
    /// non-positive during elimination.
    pub fn factor(a: &Matrix) -> Result<Self, FactorError> {
        if a.rows() != a.cols() {
            return Err(FactorError::Shape {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = a.clone();
        for j in 0..n {
            let mut d = l[(j, j)];
            for k in 0..j {
                let v = l[(j, k)];
                d -= v * v;
            }
            if !(d > 0.0) {
                return Err(FactorError::NotPositiveDefinite { order: j + 1 });
            }
            let d = d.sqrt();
            l[(j, j)] = d;
            for i in (j + 1)..n {
                let mut s = l[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / d;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A·x = b` via two triangular solves.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension; use
    /// [`Cholesky::try_solve`] for a checked variant.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_upper(&y)
    }

    /// Solves `A·x = b`, validating the right-hand side first — the
    /// checked variant of [`Cholesky::solve`], mirroring
    /// [`crate::Lu::try_solve`].
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if `b.len()` differs from the
    /// factored dimension.
    pub fn try_solve(&self, b: &[f64]) -> Result<Vec<f64>, FactorError> {
        if b.len() != self.dim() {
            return Err(FactorError::Shape {
                rows: b.len(),
                cols: self.dim(),
            });
        }
        Ok(self.solve(b))
    }

    /// Solves `A·X = B` column by column, validating the shape first,
    /// mirroring [`crate::Lu::try_solve_matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if `b.rows()` differs from the
    /// factored dimension.
    pub fn try_solve_matrix(&self, b: &Matrix) -> Result<Matrix, FactorError> {
        if b.rows() != self.dim() {
            return Err(FactorError::Shape {
                rows: b.rows(),
                cols: b.cols(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col: Vec<f64> = (0..b.rows()).map(|i| b[(i, j)]).collect();
            let x = self.solve(&col);
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Solves `L·y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ·x = y` (back substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the factored dimension.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "rhs length must equal matrix dimension");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Log-determinant of `A`: `2·Σ log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Borrow the lower-triangular factor (entries above the diagonal are
    /// unspecified).
    pub fn lower(&self) -> &Matrix {
        &self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_known_matrix() {
        // A = [[4, 12, -16], [12, 37, -43], [-16, -43, 98]] has
        // L = [[2,0,0],[6,1,0],[-8,5,3]] (classic textbook example).
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ]);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.lower();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_direct() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let b = [2.0, 1.0];
        let x = ch.solve(&b);
        let r = a.matvec(&x);
        assert!((r[0] - b[0]).abs() < 1e-12);
        assert!((r[1] - b[1]).abs() < 1e-12);
    }

    #[test]
    fn log_det_matches() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let det: f64 = 4.0 * 3.0 - 2.0 * 2.0;
        assert!((ch.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3)),
            Err(FactorError::Shape { .. })
        ));
    }

    #[test]
    fn workspace_matches_owning_path_exactly() {
        let a = Matrix::from_rows(&[&[9.0, 3.0, 1.0], &[3.0, 5.0, 2.0], &[1.0, 2.0, 6.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let mut ws = CholeskyWorkspace::new(3);
        Cholesky::factor_into(&a, &mut ws).unwrap();
        let b = [1.0, -2.0, 3.0];
        let x_owned = ch.solve(&b);
        let mut x_ws = Vec::new();
        ws.solve_into(&b, &mut x_ws).unwrap();
        assert_eq!(x_owned, x_ws);
        assert_eq!(ch.log_det().to_bits(), ws.log_det().to_bits());
    }

    #[test]
    fn workspace_rejects_bad_shapes_and_indefinite() {
        let mut ws = CholeskyWorkspace::new(2);
        assert!(matches!(
            Cholesky::factor_into(&Matrix::zeros(2, 3), &mut ws),
            Err(FactorError::Shape { .. })
        ));
        let indefinite = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            Cholesky::factor_into(&indefinite, &mut ws),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
        assert!(ws.solve_into(&[1.0, 1.0], &mut Vec::new()).is_err());
        let spd = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        Cholesky::factor_into(&spd, &mut ws).unwrap();
        assert!(ws.solve_into(&[1.0, 1.0, 1.0], &mut Vec::new()).is_err());
        assert!(ws.solve_into(&[1.0, 1.0], &mut Vec::new()).is_ok());
    }

    #[test]
    fn try_solve_reports_dimension_mismatch() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(matches!(
            ch.try_solve(&[1.0, 2.0, 3.0]),
            Err(FactorError::Shape { .. })
        ));
        assert!(matches!(
            ch.try_solve_matrix(&Matrix::zeros(3, 2)),
            Err(FactorError::Shape { .. })
        ));
        assert_eq!(ch.try_solve(&[2.0, 1.0]).unwrap(), ch.solve(&[2.0, 1.0]));
        let mut ws = CholeskyWorkspace::new(2);
        // Workspace variants are checked even before a factorization exists.
        assert!(ws.try_solve(&[1.0, 1.0]).is_err());
        Cholesky::factor_into(&a, &mut ws).unwrap();
        assert!(matches!(
            ws.try_solve(&[1.0; 3]),
            Err(FactorError::Shape { .. })
        ));
        assert_eq!(ws.try_solve(&[2.0, 1.0]).unwrap(), ch.solve(&[2.0, 1.0]));
        assert!(matches!(
            ws.try_solve_matrix(&Matrix::zeros(3, 3)),
            Err(FactorError::Shape { .. })
        ));
    }

    #[test]
    fn try_solve_matrix_inverts() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.try_solve_matrix(&Matrix::identity(2)).unwrap();
        let prod = a.matmul(&inv);
        assert!((&prod - &Matrix::identity(2)).max_abs() < 1e-12);
        let mut ws = CholeskyWorkspace::new(2);
        Cholesky::factor_into(&a, &mut ws).unwrap();
        let inv_ws = ws.try_solve_matrix(&Matrix::identity(2)).unwrap();
        assert_eq!(inv, inv_ws);
    }

    #[test]
    fn triangular_solves_compose() {
        let a = Matrix::from_rows(&[&[9.0, 3.0, 1.0], &[3.0, 5.0, 2.0], &[1.0, 2.0, 6.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let b = [1.0, -2.0, 3.0];
        let y = ch.solve_lower(&b);
        let x = ch.solve_upper(&y);
        let direct = ch.solve(&b);
        for (u, v) in x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-14);
        }
    }
}
