//! Parallel population evaluation must be a pure wall-clock optimization:
//! for every optimizer that fans simulations out over worker threads, the
//! recorded history — designs, spec vectors, FoMs, feasibility flags —
//! must be bit-identical to a fully serial run.
//!
//! This includes the simulator's workspace pooling: circuit problems lease
//! `NewtonWorkspace`s from `spice`'s topology-keyed pool, so which
//! candidate inherits which workspace (and its recorded sparse patterns /
//! factor storage) depends on thread count and scheduling. The
//! [`SparseLadder`] problem exercises exactly that machinery — its MNA
//! system is large enough for the sparse stamp→slot kernel — and its
//! histories must still be bit-identical serial vs parallel.

use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{
    parallel, DifferentialEvolution, Fom, Optimizer, RandomSearch, RunResult, SizingProblem,
    SpecResult, StopPolicy,
};
use spice::{Circuit, SimOptions, Waveform, GND};

/// The `examples/quickstart.rs` problem: minimize "power" x0+x1 subject to
/// a "gain" constraint x0·x1 ≥ 0.2.
struct ToyAmp;

impl SizingProblem for ToyAmp {
    fn dim(&self) -> usize {
        2
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.05; 2], vec![1.0; 2])
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        SpecResult {
            failure: None,
            objective: x[0] + x[1],
            constraints: vec![0.2 - x[0] * x[1]],
        }
    }
    fn name(&self) -> &str {
        "toy-amp"
    }
}

/// A real-simulator problem: a 30-stage diode-connected-NMOS ladder whose
/// MNA system (32 unknowns) runs the sparse stamp→slot pipeline through
/// pool-leased workspaces — the machinery whose reuse across candidates
/// must never leak between them. The evaluation also runs an AC sweep and
/// a noise analysis through the same pooled workspace, so the complex
/// pattern-shared kernel (slot-map assembly, per-sweep pivot re-derivation,
/// adjoint transpose solves) is under the same bit-identity contract.
struct SparseLadder;

impl SparseLadder {
    fn build(x: &[f64]) -> Circuit {
        Self::build_at(x, 1.8)
    }

    fn build_at(x: &[f64], vdd: f64) -> Circuit {
        let nmos = spice::MosModel {
            polarity: spice::MosPolarity::Nmos,
            vth0: 0.45,
            kp: 300e-6,
            clm: 0.02e-6,
            gamma: 0.4,
            phi: 0.8,
            nsub: 1.4,
            cox: 8.5e-3,
            cov: 3e-10,
            cj: 1e-3,
            ldiff: 0.4e-6,
            kf: 1e-26,
            af: 1.0,
            noise_gamma: 2.0 / 3.0,
        };
        let mut c = Circuit::new();
        let vdd_node = c.node("vdd");
        // Unit AC magnitude on the supply: the AC sweep measures supply
        // ripple transfer down the ladder.
        c.add_vsource_ac("VDD", vdd_node, GND, Waveform::Dc(vdd), 1.0)
            .unwrap();
        let mut prev = vdd_node;
        for i in 0..30 {
            let d = c.node(&format!("d{i}"));
            c.add_resistor(&format!("R{i}"), prev, d, 2e3 + 6e3 * x[1])
                .unwrap();
            c.add_mosfet(
                &format!("M{i}"),
                d,
                d,
                GND,
                GND,
                &nmos,
                (1.0 + 9.0 * x[0]) * 1e-6,
                0.5e-6,
                1.0,
            )
            .unwrap();
            prev = d;
        }
        c
    }
}

impl SparseLadder {
    /// The full measurement suite (DC + AC + noise through one pooled
    /// workspace) at a given supply — shared by the nominal problem and
    /// the corner-indexed wrapper below.
    fn evaluate_at(x: &[f64], vdd: f64) -> SpecResult {
        let ckt = Self::build_at(x, vdd);
        let mut ws = spice::lease_workspace(&ckt);
        let Ok(op) = spice::op_with_workspace(&ckt, &SimOptions::default(), None, &mut ws) else {
            return SpecResult::failed(1);
        };
        let mid = ckt.find_node("d14").unwrap();
        let end = ckt.find_node("d29").unwrap();
        // AC + noise through the same pooled workspace: the sparse complex
        // kernel's per-sweep pivot re-derivation and the adjoint transpose
        // solve both feed raw solved values into the recorded history.
        let freqs = [1e3, 1e6, 1e9];
        let Ok(sweep) =
            spice::ac_with_workspace(&ckt, &SimOptions::default(), &op, &freqs, &mut ws)
        else {
            return SpecResult::failed(1);
        };
        let ripple = sweep.voltage(2, end).abs();
        let Ok(nres) = spice::noise_with_workspace(
            &ckt,
            &SimOptions::default(),
            &op,
            end,
            GND,
            &freqs,
            &mut ws,
        ) else {
            return SpecResult::failed(1);
        };
        // Raw solved voltages: any last-ulp difference between candidates
        // sharing (or not sharing) a pooled workspace shows up here.
        SpecResult {
            failure: None,
            objective: op.voltage(end) + ripple + 1e3 * nres.total_rms(),
            constraints: vec![0.9 - op.voltage(mid)],
        }
    }
}

impl SizingProblem for SparseLadder {
    fn dim(&self) -> usize {
        2
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; 2], vec![1.0; 2])
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        Self::evaluate_at(x, 1.8)
    }
    fn name(&self) -> &str {
        "sparse-ladder"
    }
}

/// The [`SparseLadder`] with a three-corner supply plane: every candidate
/// expands into the candidate×corner grid inside
/// `opt::Evaluator::evaluate_corners_batch`, each corner leasing pooled
/// workspaces for the *same* topology — exactly the reuse pattern whose
/// thread/corner assignment must never show up in the results.
struct CorneredLadder;

const LADDER_SUPPLIES: [f64; 3] = [1.62, 1.8, 1.98];

impl SizingProblem for CorneredLadder {
    fn dim(&self) -> usize {
        2
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; 2], vec![1.0; 2])
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn num_corners(&self) -> usize {
        LADDER_SUPPLIES.len()
    }
    fn corner_name(&self, k: usize) -> String {
        format!("vdd{:.2}", LADDER_SUPPLIES[k])
    }
    fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
        SparseLadder::evaluate_at(x, LADDER_SUPPLIES[k])
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        opt::evaluate_worst_case(self, x)
    }
    fn name(&self) -> &str {
        "cornered-ladder"
    }
}

/// Exact (bitwise) history comparison.
fn assert_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.history.len(), b.history.len(), "{label}: history length");
    assert_eq!(
        a.history.first_feasible(),
        b.history.first_feasible(),
        "{label}: first feasible"
    );
    for (i, (ea, eb)) in a
        .history
        .entries()
        .iter()
        .zip(b.history.entries())
        .enumerate()
    {
        assert_eq!(ea.x, eb.x, "{label}: design #{i}");
        assert_eq!(ea.fom.to_bits(), eb.fom.to_bits(), "{label}: fom #{i}");
        assert_eq!(ea.feasible, eb.feasible, "{label}: feasibility #{i}");
        assert_eq!(
            ea.spec.objective.to_bits(),
            eb.spec.objective.to_bits(),
            "{label}: f0 #{i}"
        );
        assert_eq!(
            ea.spec.constraints, eb.spec.constraints,
            "{label}: constraints #{i}"
        );
        // Per-corner records (attached by the corner-grid engine) are
        // under the same bitwise contract as the merged spec.
        assert_eq!(
            ea.corner_specs.len(),
            eb.corner_specs.len(),
            "{label}: corner count #{i}"
        );
        for (k, (ca, cb)) in ea.corner_specs.iter().zip(&eb.corner_specs).enumerate() {
            assert_eq!(
                ca.objective.to_bits(),
                cb.objective.to_bits(),
                "{label}: corner {k} f0 #{i}"
            );
            assert_eq!(
                ca.constraints, cb.constraints,
                "{label}: corner {k} constraints #{i}"
            );
        }
    }
    assert_eq!(
        a.history.best_trace(),
        b.history.best_trace(),
        "{label}: best trace"
    );
}

/// One test covers all methods so the global thread-count override is
/// never raced by a concurrently running test.
#[test]
fn serial_and_parallel_runs_are_bit_identical() {
    let problem = ToyAmp;
    let fom = Fom::uniform(1.0, 1);
    let quick = DnnOptConfig {
        critic_epochs: 60,
        actor_epochs: 20,
        critic_batch: 64,
        hidden: 16,
        ..Default::default()
    };
    let methods: Vec<(Box<dyn Optimizer>, usize)> = vec![
        (Box::new(DifferentialEvolution::default()), 150),
        (Box::new(RandomSearch), 150),
        (Box::new(DnnOpt::new(quick)), 40),
    ];
    for (method, budget) in &methods {
        for stop in [StopPolicy::Exhaust, StopPolicy::FirstFeasible] {
            parallel::set_max_threads(1);
            let serial = method.run(&problem, &fom, *budget, stop, 42);
            parallel::set_max_threads(8);
            let parallel_run = method.run(&problem, &fom, *budget, stop, 42);
            parallel::set_max_threads(0);
            assert_identical(
                &serial,
                &parallel_run,
                &format!("{} ({stop:?})", method.name()),
            );
        }
    }

    // The same guarantee through the full simulator stack with workspace
    // pooling on: candidates lease pooled `NewtonWorkspace`s (recorded
    // sparse patterns, reused factor storage), and which candidate gets
    // which workspace depends on the thread count — the results must not.
    let ladder = SparseLadder;
    let fom = Fom::uniform(1.0, 1);
    let sim_methods: Vec<(Box<dyn Optimizer>, usize)> = vec![
        (Box::new(RandomSearch), 48),
        (Box::new(DifferentialEvolution::default()), 60),
    ];
    for (method, budget) in &sim_methods {
        parallel::set_max_threads(1);
        let serial = method.run(&ladder, &fom, *budget, StopPolicy::Exhaust, 7);
        parallel::set_max_threads(8);
        let parallel_run = method.run(&ladder, &fom, *budget, StopPolicy::Exhaust, 7);
        parallel::set_max_threads(0);
        assert_identical(
            &serial,
            &parallel_run,
            &format!("{} (spice pool)", method.name()),
        );
    }
    // The corner-grid engine under the same contract: candidates of a
    // corner-indexed problem expand into the candidate×corner grid
    // (`Evaluator::evaluate_corners_batch`), whose flattened work items
    // are what the worker threads chunk — so both the candidate→thread
    // *and* corner→thread assignments vary with thread count while the
    // recorded histories (merged specs, FoMs, and the attached per-corner
    // metric vectors) must stay bit-identical, with workspace pooling on.
    let cornered = CorneredLadder;
    let fom = Fom::uniform(1.0, 1);
    let corner_methods: Vec<(Box<dyn Optimizer>, usize)> = vec![
        (Box::new(RandomSearch), 24),
        (Box::new(DifferentialEvolution::default()), 36),
        (
            Box::new(DnnOpt::new(DnnOptConfig {
                corner_critic: true,
                critic_epochs: 60,
                actor_epochs: 20,
                critic_batch: 64,
                hidden: 16,
                ..Default::default()
            })),
            26,
        ),
    ];
    for (method, budget) in &corner_methods {
        parallel::set_max_threads(1);
        let serial = method.run(&cornered, &fom, *budget, StopPolicy::Exhaust, 7);
        parallel::set_max_threads(8);
        let parallel_run = method.run(&cornered, &fom, *budget, StopPolicy::Exhaust, 7);
        parallel::set_max_threads(0);
        // Every entry really ran the corner grid.
        assert!(serial
            .history
            .entries()
            .iter()
            .all(|e| e.corner_specs.len() == 3));
        assert_identical(
            &serial,
            &parallel_run,
            &format!("{} (corner grid)", method.name()),
        );
    }

    // And the solver state the runs left behind really is the sparse
    // pipeline — for the DC Newton solves *and* the AC/noise sweeps: a
    // pooled workspace for this topology selected both sparse kernels.
    let ws = spice::lease_workspace(&SparseLadder::build(&[0.5, 0.5]));
    assert!(
        ws.uses_sparse(false),
        "ladder evaluations must run the sparse kernel"
    );
    assert!(
        ws.uses_sparse_ac(),
        "ladder AC/noise sweeps must run the sparse complex kernel"
    );

    // Post-layout mesh topology through the supernodal blocked replay: the
    // panel batches run the same threaded GEMM micro-kernel as training,
    // and the replay itself fans the elimination-tree task partition out
    // over the shared pool at threads > 1 — so factor + refactor + solve
    // must stay bit-identical at any thread count, with the blocked path
    // and the etree partition demonstrably active.
    let mesh_solution = |threads: usize| {
        use spice::stamp::{stamp_resistive_system, RealStamper, SourceEval};
        parallel::set_max_threads(threads);
        let ckt = circuits::mesh::build_rc_grid(500);
        let mut st = RealStamper::new(&ckt);
        let x0 = vec![0.0; 500];
        st.clear();
        st.load_gmin(1e-12);
        stamp_resistive_system(&ckt, &x0, SourceEval::Dc { scale: 1.0 }, &mut st);
        let a = linalg::CscMatrix::from_dense(&st.a);
        let mut slu = linalg::SparseLu::new();
        slu.set_supernodal_mode(linalg::SupernodalMode::ForceBlocked);
        slu.factor(&a).unwrap();
        assert!(slu.supernodal_active(), "mesh must engage the blocked path");
        assert!(slu.wide_supernodes() > 0, "mesh must form dense panels");
        assert!(
            slu.parallel_tasks() >= 2,
            "mesh must partition into independent subtree tasks"
        );
        slu.refactor_into(&a).unwrap();
        let mut x = Vec::new();
        slu.solve_into(&st.z, &mut x).unwrap();
        parallel::set_max_threads(0);
        x.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
    };
    let mesh_reference = mesh_solution(1);
    for threads in [2usize, 8] {
        assert_eq!(
            mesh_solution(threads),
            mesh_reference,
            "supernodal mesh factorization must be bit-identical serial vs {threads}-thread"
        );
    }
}
