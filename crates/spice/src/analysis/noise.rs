//! Small-signal noise analysis.
//!
//! For each frequency the adjoint system `Aᵀ·y = e_out` is solved once;
//! the transfer from a noise current injected between nodes `(a, b)` to the
//! output voltage is then `y_b − y_a`, so every device contribution costs
//! O(1) after a single factorization. Output noise PSD is the sum of
//! `|H|²·S_i` over all noise sources (resistor thermal, MOSFET channel
//! thermal + flicker), and the integrated RMS noise is a trapezoidal
//! integral of the PSD over the analysis band.
//!
//! The adjoint shares the AC sweep's machinery end to end: the matrix `A`
//! is the same `G + jωC` the AC analysis assembles (source excitation only
//! touches the right-hand side), so noise reuses the workspace's recorded
//! pattern and slot map, factors the *forward* system once per point
//! (pivoting at the first frequency, scan-free refactorization after), and
//! solves the transpose on those same factors — no transposed matrix is
//! ever built, on either the sparse or the dense path.

use linalg::C64;

use crate::analysis::ac::SmallSignalAssembler;
use crate::analysis::dc::OpPoint;
use crate::error::SpiceError;
use crate::mos::{mos_noise_psd, BOLTZMANN};
use crate::netlist::{Circuit, Device, NodeId};
use crate::options::SimOptions;
use crate::workspace::{lease_workspace, NewtonWorkspace};

/// Result of a noise analysis.
#[derive(Debug, Clone)]
pub struct NoiseResult {
    freqs: Vec<f64>,
    /// Output noise voltage PSD \[V²/Hz\] per frequency.
    psd: Vec<f64>,
    /// Integrated output noise \[V rms\] over the analysis band.
    total_rms: f64,
}

impl NoiseResult {
    /// The frequency grid \[Hz\].
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Output-referred noise voltage PSD \[V²/Hz\] per frequency point.
    pub fn psd(&self) -> &[f64] {
        &self.psd
    }

    /// Integrated output noise over the band \[V rms\].
    pub fn total_rms(&self) -> f64 {
        self.total_rms
    }
}

/// Runs a noise analysis: output noise at `out_p − out_n` over `freqs`.
///
/// Uses the operating point `op` for device small-signal parameters.
/// Independent sources are quiesced (V → short, I → open).
///
/// # Errors
///
/// Returns [`SpiceError::SingularMatrix`] if the small-signal system is
/// singular, or [`SpiceError::BadAnalysis`] for an empty grid.
pub fn noise(
    circuit: &Circuit,
    opts: &SimOptions,
    op: &OpPoint,
    out_p: NodeId,
    out_n: NodeId,
    freqs: &[f64],
) -> Result<NoiseResult, SpiceError> {
    let mut ws = lease_workspace(circuit);
    noise_with_workspace(circuit, opts, op, out_p, out_n, freqs, &mut ws)
}

/// [`noise`] with an explicit workspace: the adjoint sweep reuses the same
/// recorded complex pattern, slot map, and factor storage as
/// [`crate::analysis::ac::ac_with_workspace`] (the two analyses assemble
/// the same matrix), so a testbench running both on one topology pays the
/// symbolic analysis once.
///
/// # Errors
///
/// Same failure modes as [`noise`].
pub fn noise_with_workspace(
    circuit: &Circuit,
    opts: &SimOptions,
    op: &OpPoint,
    out_p: NodeId,
    out_n: NodeId,
    freqs: &[f64],
    ws: &mut NewtonWorkspace,
) -> Result<NoiseResult, SpiceError> {
    if freqs.is_empty() {
        return Err(SpiceError::BadAnalysis {
            reason: "empty frequency grid".to_string(),
        });
    }
    let n = circuit.num_unknowns();
    ws.ensure(circuit);
    ws.begin_session();
    let session = ws.session();
    let ac_ws = ws.ac_mut(circuit);
    let mut psd = Vec::with_capacity(freqs.len());
    let mut e_out = vec![C64::ZERO; n];
    if out_p != 0 {
        e_out[out_p - 1] = C64::ONE;
    }
    if out_n != 0 {
        e_out[out_n - 1] -= C64::ONE;
    }
    let mut y = Vec::new();

    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut assembler = SmallSignalAssembler {
            circuit,
            op,
            opts,
            omega,
            zero_sources: true,
        };
        // Factor the forward system, then solve the adjoint Aᵀ y = e_out
        // on the same factors.
        let kernel = ac_ws
            .factor_point(circuit, session, &mut assembler)
            .map_err(|()| SpiceError::SingularMatrix { analysis: "noise" })?;
        if !ac_ws.solve_transpose(kernel, &e_out, &mut y) {
            return Err(SpiceError::SingularMatrix { analysis: "noise" });
        }
        let transfer_sq = |a: NodeId, b: NodeId| -> f64 {
            let ya = if a == 0 { C64::ZERO } else { y[a - 1] };
            let yb = if b == 0 { C64::ZERO } else { y[b - 1] };
            (yb - ya).abs_sq()
        };

        let mut s_out = 0.0;
        for dev in circuit.devices() {
            match dev {
                Device::Resistor { a, b, g, .. } => {
                    // Thermal current noise 4kT·g across the resistor.
                    let s_i = 4.0 * BOLTZMANN * opts.temp * g;
                    s_out += transfer_sq(*a, *b) * s_i;
                }
                Device::Mosfet {
                    name,
                    d,
                    s,
                    model,
                    l,
                    ..
                } => {
                    let mop = op
                        .mos_op(name)
                        .expect("operating point must cover every MOSFET");
                    let s_i = mos_noise_psd(model, *l, mop.gm, mop.id, f, opts.temp);
                    s_out += transfer_sq(*d, *s) * s_i;
                }
                _ => {}
            }
        }
        psd.push(s_out);
    }

    // Trapezoidal integration of the PSD over the band.
    let mut total = 0.0;
    for i in 1..freqs.len() {
        total += 0.5 * (psd[i] + psd[i - 1]) * (freqs[i] - freqs[i - 1]);
    }
    Ok(NoiseResult {
        freqs: freqs.to_vec(),
        psd,
        total_rms: total.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ac::log_freqs;
    use crate::netlist::GND;
    use crate::waveform::Waveform;

    #[test]
    fn resistor_thermal_noise_psd() {
        // A single grounded resistor driven by a shorted source: output PSD
        // at the node equals 4kTR (current noise 4kT/R through impedance R).
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, GND, 10e3).unwrap();
        // A 0 V source elsewhere keeps the OP solvable but must not short R1.
        let b = c.node("b");
        c.add_vsource("V1", b, GND, Waveform::Dc(0.0)).unwrap();
        c.add_resistor("R2", b, GND, 1e3).unwrap();
        let opts = SimOptions::default();
        let op = crate::analysis::dc::op(&c, &opts).unwrap();
        let nr = noise(&c, &opts, &op, a, GND, &[1e3]).unwrap();
        let expect = 4.0 * BOLTZMANN * opts.temp * 10e3;
        let rel = (nr.psd()[0] - expect).abs() / expect;
        assert!(rel < 1e-3, "psd {} vs {}", nr.psd()[0], expect);
    }

    #[test]
    fn rc_filtered_noise_integrates_to_kt_over_c() {
        // Classic result: total noise of an RC filter is kT/C, independent
        // of R. Integrate far past the pole to capture ~all of it.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, GND, Waveform::Dc(0.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        let cap = 1e-12;
        c.add_capacitor("C1", b, GND, cap).unwrap();
        let opts = SimOptions::default();
        let op = crate::analysis::dc::op(&c, &opts).unwrap();
        // Pole at 1/(2πRC) ≈ 159 MHz; integrate 1 kHz .. 100 GHz.
        let freqs = log_freqs(1e3, 1e11, 40);
        let nr = noise(&c, &opts, &op, b, GND, &freqs).unwrap();
        let expect = (BOLTZMANN * opts.temp / cap).sqrt();
        let rel = (nr.total_rms() - expect).abs() / expect;
        assert!(rel < 0.05, "kT/C: got {} expect {}", nr.total_rms(), expect);
    }

    #[test]
    fn divider_splits_noise_transfer() {
        // Two equal resistors from a driven node: the grounded one sees half
        // its open-circuit transfer.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, GND, Waveform::Dc(0.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, GND, 1e3).unwrap();
        let opts = SimOptions::default();
        let op = crate::analysis::dc::op(&c, &opts).unwrap();
        let nr = noise(&c, &opts, &op, b, GND, &[1e3]).unwrap();
        // Both resistors contribute 4kT/R·(R/2)² = kTR each; total 2kTR.
        let expect = 2.0 * BOLTZMANN * opts.temp * 1e3;
        let rel = (nr.psd()[0] - expect).abs() / expect;
        assert!(rel < 1e-3, "psd {} vs {}", nr.psd()[0], expect);
    }

    #[test]
    fn flicker_noise_rises_at_low_frequency() {
        use crate::mos::{MosModel, MosPolarity};
        let nmos = MosModel {
            polarity: MosPolarity::Nmos,
            vth0: 0.45,
            kp: 300e-6,
            clm: 0.02e-6,
            gamma: 0.4,
            phi: 0.8,
            nsub: 1.4,
            cox: 8.5e-3,
            cov: 3e-10,
            cj: 1e-3,
            ldiff: 0.4e-6,
            kf: 1e-24,
            af: 1.0,
            noise_gamma: 2.0 / 3.0,
        };
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, GND, Waveform::Dc(1.8)).unwrap();
        c.add_vsource("VG", g, GND, Waveform::Dc(0.7)).unwrap();
        c.add_resistor("RD", vdd, d, 20e3).unwrap();
        c.add_mosfet("M1", d, g, GND, GND, &nmos, 10e-6, 1e-6, 1.0)
            .unwrap();
        let opts = SimOptions::default();
        let op = crate::analysis::dc::op(&c, &opts).unwrap();
        let nr = noise(&c, &opts, &op, d, GND, &[1.0, 1e6]).unwrap();
        assert!(
            nr.psd()[0] > 10.0 * nr.psd()[1],
            "flicker should dominate at 1 Hz"
        );
    }

    #[test]
    fn empty_grid_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, GND, Waveform::Dc(1.0)).unwrap();
        c.add_resistor("R1", a, GND, 1e3).unwrap();
        let opts = SimOptions::default();
        let op = crate::analysis::dc::op(&c, &opts).unwrap();
        assert!(noise(&c, &opts, &op, a, GND, &[]).is_err());
    }
}
