//! Process-wide worker pool and the two-level thread budget.
//!
//! Both parallel layers of the workspace — the candidate×corner×analysis
//! evaluation grid in `opt::parallel` and the threaded GEMM path in
//! [`crate::gemm`] — draw workers from the single pool in this module, so
//! the process never oversubscribes the host no matter how the layers
//! nest. The budget is strictly two-level:
//!
//! - the **evaluation grid** gets the full thread budget. While a grid
//!   fan-out is in flight (tracked by [`grid_scope`]), [`gemm_threads`]
//!   reports `1`, so any GEMM issued from inside a worker runs serial —
//!   the grid already owns every core.
//! - **GEMM** goes parallel only when the grid is idle — exactly the
//!   critic/actor training windows between optimizer generations, which
//!   is where the multi-threaded GEMM payoff lives.
//!
//! The budget itself comes from [`max_threads`]: a programmatic
//! [`set_max_threads`] override if set, else the `DNNOPT_THREADS`
//! environment variable, else the machine's available parallelism. `1`
//! forces fully serial execution everywhere.
//!
//! # Determinism
//!
//! The pool provides *workers*, not scheduling decisions: [`run`] invokes
//! `task(slot)` for every slot in `0..threads` exactly once, with slot 0
//! on the calling thread. How work maps to slots is decided entirely by
//! the caller as a pure function of (work size, thread count) — there is
//! no queue and no stealing — so callers that partition work
//! deterministically stay bit-identical at any thread count.
//!
//! Workers are spawned lazily up to the largest slot count ever requested
//! and then persist for the life of the process, parked on a condvar
//! between jobs. This keeps repeated small dispatches (one per GEMM inside
//! a training loop) cheap: no thread spawn/join per call.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// 0 = "not set, use the environment/hardware default".
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of evaluation-grid fan-outs currently in flight (see
/// [`grid_scope`]).
static GRID_ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on pool worker threads and on a caller while it runs slot 0 of
    /// a dispatched job: any nested [`run`] must degrade to inline serial
    /// execution instead of deadlocking on (or oversubscribing) the pool.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Overrides the process-wide thread budget for both the evaluation grid
/// and GEMM. `1` forces fully serial execution; `0` restores the default
/// (`DNNOPT_THREADS`, else available parallelism).
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The thread budget currently in effect: [`set_max_threads`] if set, else
/// the `DNNOPT_THREADS` environment variable, else the machine's available
/// parallelism.
pub fn max_threads() -> usize {
    let forced = MAX_THREADS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("DNNOPT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Marks an evaluation-grid fan-out as in flight for the guard's lifetime.
/// While any grid scope is active, [`gemm_threads`] reports `1` (the grid
/// owns the budget), implementing the two-level budget described in the
/// module docs.
pub fn grid_scope() -> GridGuard {
    GRID_ACTIVE.fetch_add(1, Ordering::Relaxed);
    GridGuard { _priv: () }
}

/// RAII guard returned by [`grid_scope`].
#[derive(Debug)]
pub struct GridGuard {
    _priv: (),
}

impl Drop for GridGuard {
    fn drop(&mut self) {
        GRID_ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The thread budget available to a GEMM issued *right now*: the full
/// [`max_threads`] budget when the evaluation grid is idle and the caller
/// is not itself a pool worker, `1` otherwise.
pub fn gemm_threads() -> usize {
    if GRID_ACTIVE.load(Ordering::Relaxed) > 0 || IN_POOL.with(|c| c.get()) {
        return 1;
    }
    max_threads()
}

/// One pending dispatch: a lifetime-erased borrow of the caller's task
/// plus the slot count. The borrow stays valid because [`run`] does not
/// return until every participating worker has finished with it.
#[derive(Clone, Copy)]
struct Job {
    task: &'static (dyn Fn(usize) + Sync),
    threads: usize,
    /// Telemetry timestamp of the dispatch (0 when tracing is off):
    /// workers subtract it from their pick-up time to histogram the
    /// pool's dispatch latency.
    posted_ns: u64,
}

struct PoolState {
    job: Option<Job>,
    /// Bumped once per job so parked workers can tell a fresh job from the
    /// one they just finished.
    epoch: u64,
    /// Participating workers (slots `1..threads`) still running.
    remaining: usize,
    /// Worker threads spawned so far; worker `i` serves slot `i` (slot 0
    /// is always the caller).
    spawned: usize,
    /// First panic message captured from a worker, if any.
    panic: Option<String>,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Signals workers that a new job was posted.
    work: Condvar,
    /// Signals callers that a job drained (all participants finished).
    done: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            job: None,
            epoch: 0,
            remaining: 0,
            spawned: 0,
            panic: None,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    })
}

fn worker_loop(id: usize) {
    IN_POOL.with(|c| c.set(true));
    // Stable telemetry identity: this worker's counters land in shard
    // `id` and its span events carry `tid = id` (the caller is slot 0).
    telemetry::set_thread_slot(id);
    let pool = pool();
    let mut seen_epoch = 0u64;
    loop {
        let mut st = pool.state.lock().unwrap();
        while st.job.is_none() || st.epoch == seen_epoch {
            st = pool.work.wait(st).unwrap();
        }
        seen_epoch = st.epoch;
        let job = *st.job.as_ref().unwrap();
        drop(st);
        if id >= job.threads {
            // Not a participant this job: park again until the next epoch.
            continue;
        }
        // The task's `'static` is a lie told by `run`, which keeps the
        // real borrow alive until `remaining` hits zero — and that cannot
        // happen before this participant decrements it below.
        let task = job.task;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _busy = time_slot(job.posted_ns);
            task(id)
        }));
        let mut st = pool.state.lock().unwrap();
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(panic_text(payload.as_ref()));
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            pool.done.notify_all();
        }
    }
}

/// Telemetry guard around one slot's share of a dispatched job: records
/// the dispatch latency on pick-up (workers only — the caller never
/// waited) and the slot's busy time plus a `pool_job` span on drop. Costs
/// one gate check when tracing is off.
fn time_slot(posted_ns: u64) -> SlotTimer {
    if !telemetry::enabled() {
        return SlotTimer {
            _span: None,
            start_ns: 0,
        };
    }
    let now = telemetry::clock_ns();
    if posted_ns > 0 {
        telemetry::record(
            telemetry::Metric::PoolDispatchNs,
            now.saturating_sub(posted_ns),
        );
    }
    SlotTimer {
        _span: Some(telemetry::span(telemetry::SpanId::PoolJob)),
        start_ns: now,
    }
}

struct SlotTimer {
    _span: Option<telemetry::Span>,
    start_ns: u64,
}

impl Drop for SlotTimer {
    fn drop(&mut self) {
        if self._span.is_some() {
            telemetry::record(
                telemetry::Metric::PoolBusyNs,
                telemetry::clock_ns().saturating_sub(self.start_ns),
            );
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `task(slot)` exactly once for every `slot in 0..threads`: slot 0
/// on the calling thread, slots `1..threads` on pool workers. Returns
/// after every slot has finished.
///
/// With `threads <= 1`, from inside a pool worker, or from a caller
/// already running a dispatched slot 0, the slots run inline on the
/// current thread — nested parallelism degrades to serial instead of
/// deadlocking.
///
/// # Panics
///
/// A panic in any slot is re-raised here after all slots finish (the
/// caller's own slot-0 panic takes precedence over worker panics), so a
/// panicking task never leaves the pool wedged.
pub fn run(threads: usize, task: &(dyn Fn(usize) + Sync)) {
    if threads <= 1 || IN_POOL.with(|c| c.get()) {
        for slot in 0..threads.max(1) {
            task(slot);
        }
        return;
    }
    let pool = pool();
    let mut st = pool.state.lock().unwrap();
    // Serialize dispatches: wait until any previous job fully drains.
    while st.job.is_some() {
        st = pool.done.wait(st).unwrap();
    }
    while st.spawned < threads - 1 {
        let id = st.spawned + 1;
        std::thread::Builder::new()
            .name(format!("dnnopt-pool-{id}"))
            .spawn(move || worker_loop(id))
            .expect("failed to spawn pool worker");
        st.spawned += 1;
    }
    // SAFETY: only erases the task's lifetime; `run` blocks below until
    // every participating worker is done using the borrow.
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
    };
    st.job = Some(Job {
        task: task_static,
        threads,
        posted_ns: if telemetry::enabled() {
            telemetry::clock_ns()
        } else {
            0
        },
    });
    st.epoch += 1;
    st.remaining = threads - 1;
    st.panic = None;
    drop(st);
    pool.work.notify_all();

    // The caller is slot 0. Mark it in-pool so nested dispatches (e.g. a
    // GEMM inside a grid worker task) run inline.
    IN_POOL.with(|c| c.set(true));
    let own = catch_unwind(AssertUnwindSafe(|| {
        let _busy = time_slot(0);
        task(0)
    }));
    IN_POOL.with(|c| c.set(false));

    let mut st = pool.state.lock().unwrap();
    while st.remaining > 0 {
        st = pool.done.wait(st).unwrap();
    }
    st.job = None;
    let worker_panic = st.panic.take();
    drop(st);
    // Wake any other caller parked in the drain loop above.
    pool.done.notify_all();

    if let Err(payload) = own {
        resume_unwind(payload);
    }
    if let Some(msg) = worker_panic {
        panic!("pool worker panicked: {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_slot_exactly_once() {
        for threads in [1usize, 2, 3, 7] {
            let hits: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            run(threads, &|slot| {
                hits[slot].fetch_add(1, Ordering::Relaxed);
            });
            for (slot, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "slot {slot} of {threads}");
            }
        }
    }

    #[test]
    fn repeated_dispatches_reuse_workers() {
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            run(4, &|slot| {
                total.fetch_add(slot as u64 + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn nested_run_degrades_to_inline_serial() {
        let inner_hits = AtomicUsize::new(0);
        run(3, &|_slot| {
            // From inside a job every thread is in-pool, so this must run
            // inline rather than re-entering the pool.
            run(4, &|_| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_hits.load(Ordering::Relaxed), 3 * 4);
    }

    #[test]
    fn grid_scope_throttles_gemm_threads() {
        set_max_threads(4);
        assert_eq!(gemm_threads(), 4);
        {
            let _g = grid_scope();
            assert_eq!(gemm_threads(), 1);
            {
                let _g2 = grid_scope();
                assert_eq!(gemm_threads(), 1);
            }
            assert_eq!(gemm_threads(), 1);
        }
        assert_eq!(gemm_threads(), 4);
        set_max_threads(0);
    }

    #[test]
    fn worker_panic_is_reraised_and_pool_survives() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run(3, &|slot| {
                if slot == 2 {
                    panic!("slot 2 exploded");
                }
            });
        }));
        let msg = panic_text(caught.unwrap_err().as_ref());
        assert!(msg.contains("slot 2 exploded"), "got {msg:?}");
        // The pool must still be usable after a panicking job.
        let hits = AtomicUsize::new(0);
        run(3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }
}
