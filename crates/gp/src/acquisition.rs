//! Bayesian-optimization acquisition functions.

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution, via the Abramowitz–Stegun
/// 7.1.26 erf approximation (absolute error < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Expected improvement for *minimization*: `E[max(best − f, 0)]` under
/// `f ~ N(mean, var)`.
///
/// # Example
///
/// ```
/// // A point predicted far below the incumbent has EI close to the gap.
/// let ei = gp::expected_improvement(0.0, 1e-9, 10.0);
/// assert!((ei - 10.0).abs() < 1e-3);
/// ```
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-12 {
        return (best - mean).max(0.0);
    }
    let u = (best - mean) / sigma;
    sigma * (u * normal_cdf(u) + normal_pdf(u))
}

/// Weighted expected improvement (Lyu et al., DAC 2018): balances the
/// exploitation term `u·Φ(u)` against the exploration term `φ(u)` with
/// weight `w ∈ [0, 1]` (`w = 0.5` recovers standard EI up to a factor 2).
pub fn weighted_expected_improvement(mean: f64, var: f64, best: f64, w: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-12 {
        return w * (best - mean).max(0.0);
    }
    let u = (best - mean) / sigma;
    sigma * (w * u * normal_cdf(u) + (1.0 - w) * normal_pdf(u))
}

/// Probability that a constraint value `f ~ N(mean, var)` satisfies
/// `f ≤ 0`.
pub fn probability_of_feasibility(mean: f64, var: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-12 {
        return if mean <= 0.0 { 1.0 } else { 0.0 };
    }
    normal_cdf(-mean / sigma)
}

/// Lower confidence bound `mean − κ·σ` (used by GASPAD prescreening).
pub fn lower_confidence_bound(mean: f64, var: f64, kappa: f64) -> f64 {
    mean - kappa * var.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841344746).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.158655254).abs() < 1e-6);
        assert!((normal_cdf(3.0) - 0.998650102).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 1.0 - 1e-9);
        assert!(normal_cdf(-8.0) < 1e-9);
    }

    #[test]
    fn pdf_properties() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert_eq!(normal_pdf(2.0), normal_pdf(-2.0));
    }

    #[test]
    fn ei_is_nonnegative_and_monotone_in_best_gap() {
        let ei_small = expected_improvement(1.0, 0.25, 0.5);
        let ei_large = expected_improvement(0.0, 0.25, 0.5);
        assert!(ei_small >= 0.0);
        assert!(ei_large > ei_small);
    }

    #[test]
    fn ei_vanishes_for_hopeless_points() {
        let ei = expected_improvement(100.0, 1e-6, 0.0);
        assert!(ei < 1e-12);
    }

    #[test]
    fn ei_zero_variance_limit() {
        assert_eq!(expected_improvement(2.0, 0.0, 5.0), 3.0);
        assert_eq!(expected_improvement(9.0, 0.0, 5.0), 0.0);
    }

    #[test]
    fn ei_grows_with_uncertainty_at_parity() {
        // At mean == best, EI = σ·φ(0).
        let e1 = expected_improvement(1.0, 1.0, 1.0);
        let e2 = expected_improvement(1.0, 4.0, 1.0);
        assert!((e1 - normal_pdf(0.0)).abs() < 1e-9);
        assert!((e2 - 2.0 * normal_pdf(0.0)).abs() < 1e-9);
    }

    #[test]
    fn weighted_ei_interpolates() {
        // w=1: pure exploitation term; w=0: pure exploration term.
        let (mean, var, best) = (0.5, 0.04, 1.0);
        let sigma = 0.2;
        let u = (best - mean) / sigma;
        let exploit = sigma * u * normal_cdf(u);
        let explore = sigma * normal_pdf(u);
        assert!((weighted_expected_improvement(mean, var, best, 1.0) - exploit).abs() < 1e-12);
        assert!((weighted_expected_improvement(mean, var, best, 0.0) - explore).abs() < 1e-12);
        let mid = weighted_expected_improvement(mean, var, best, 0.5);
        assert!((mid - 0.5 * (exploit + explore)).abs() < 1e-12);
    }

    #[test]
    fn pof_reference_points() {
        assert!((probability_of_feasibility(0.0, 1.0) - 0.5).abs() < 1e-7);
        assert!(probability_of_feasibility(-3.0, 1.0) > 0.99);
        assert!(probability_of_feasibility(3.0, 1.0) < 0.01);
        assert_eq!(probability_of_feasibility(-1.0, 0.0), 1.0);
        assert_eq!(probability_of_feasibility(1.0, 0.0), 0.0);
    }

    #[test]
    fn lcb_reduces_with_confidence() {
        assert_eq!(lower_confidence_bound(1.0, 4.0, 2.0), -3.0);
        assert_eq!(lower_confidence_bound(1.0, 0.0, 2.0), 1.0);
    }
}
