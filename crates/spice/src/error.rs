//! Simulator error type.

use crate::diag::{FailureDiag, FailureKind, LadderStage};

/// Error returned by netlist construction and analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// A nonlinear solve failed; the diagnosis carries the full taxonomy
    /// (kind, recovery-ladder stage reached, retry budget spent). The DC
    /// and transient engines report through this variant.
    Solver(FailureDiag),
    /// The MNA matrix was singular — usually a floating node or a loop of
    /// voltage sources.
    SingularMatrix {
        /// Analysis that hit the singularity.
        analysis: &'static str,
    },
    /// Newton-Raphson failed to converge even with gmin/source stepping.
    NoConvergence {
        /// Analysis that failed to converge.
        analysis: &'static str,
        /// Iterations used before giving up.
        iterations: usize,
    },
    /// A device was given a non-physical value (negative resistance,
    /// zero-width transistor, NaN, ...).
    BadValue {
        /// Device name.
        device: String,
        /// What was wrong.
        reason: String,
    },
    /// A device references a node name that does not exist (lookup API).
    UnknownNode {
        /// The offending node name.
        name: String,
    },
    /// A device name was used twice.
    DuplicateDevice {
        /// The duplicated name.
        name: String,
    },
    /// A device with this name does not exist (OP queries).
    UnknownDevice {
        /// The unknown name.
        name: String,
    },
    /// Analysis parameters are invalid (empty sweep, non-positive timestep…).
    BadAnalysis {
        /// What was wrong.
        reason: String,
    },
}

impl SpiceError {
    /// The structured failure diagnosis of this error, synthesized for
    /// variants that predate the taxonomy (AC/noise singularities, setup
    /// errors map to `None`). Testbenches use this to propagate a uniform
    /// [`FailureDiag`] regardless of which analysis failed.
    pub fn failure_diag(&self) -> Option<FailureDiag> {
        match self {
            SpiceError::Solver(diag) => Some(diag.clone()),
            SpiceError::SingularMatrix { analysis } => Some(FailureDiag {
                kind: FailureKind::Singular,
                analysis,
                stage: LadderStage::SmallSignal,
                iterations: 0,
                halvings: 0,
                injected: false,
            }),
            SpiceError::NoConvergence {
                analysis,
                iterations,
            } => Some(FailureDiag {
                kind: FailureKind::NoConvergence,
                analysis,
                stage: LadderStage::PlainNr,
                iterations: *iterations,
                halvings: 0,
                injected: false,
            }),
            _ => None,
        }
    }
}

impl std::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpiceError::Solver(diag) => write!(f, "{diag}"),
            SpiceError::SingularMatrix { analysis } => {
                write!(
                    f,
                    "singular MNA matrix during {analysis} (floating node or source loop?)"
                )
            }
            SpiceError::NoConvergence {
                analysis,
                iterations,
            } => {
                write!(
                    f,
                    "{analysis} failed to converge after {iterations} iterations"
                )
            }
            SpiceError::BadValue { device, reason } => {
                write!(f, "bad value on device {device}: {reason}")
            }
            SpiceError::UnknownNode { name } => write!(f, "unknown node {name}"),
            SpiceError::DuplicateDevice { name } => write!(f, "duplicate device name {name}"),
            SpiceError::UnknownDevice { name } => write!(f, "unknown device {name}"),
            SpiceError::BadAnalysis { reason } => write!(f, "bad analysis setup: {reason}"),
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpiceError::SingularMatrix { analysis: "dc" };
        assert!(e.to_string().contains("dc"));
        let e = SpiceError::NoConvergence {
            analysis: "tran",
            iterations: 42,
        };
        assert!(e.to_string().contains("42"));
        let e = SpiceError::BadValue {
            device: "R1".into(),
            reason: "negative".into(),
        };
        assert!(e.to_string().contains("R1"));
    }
}
