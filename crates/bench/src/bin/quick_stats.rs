//! Failure-rate and FoM statistics of random OTA samples.
use circuits::FoldedCascodeOta;
use opt::sampling::latin_hypercube;
use opt::{Fom, SizingProblem};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let ota = FoldedCascodeOta::new();
    let fom = Fom::uniform(100.0, 29);
    let (lb, ub) = ota.bounds();
    let mut rng = StdRng::seed_from_u64(0);
    let mut fails = 0;
    let mut foms = Vec::new();
    let mut nviol = Vec::new();
    for x in latin_hypercube(&mut rng, &lb, &ub, 200) {
        let s = ota.evaluate(&x);
        if s.is_failure() {
            fails += 1;
        } else {
            foms.push(fom.value(&s));
            nviol.push(s.constraints.iter().filter(|&&c| c > 0.0).count());
        }
    }
    foms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("fails: {fails}/200");
    println!(
        "fom quantiles: min={:.3} p25={:.3} p50={:.3} p75={:.3} max={:.3}",
        foms[0],
        foms[foms.len() / 4],
        foms[foms.len() / 2],
        foms[3 * foms.len() / 4],
        foms[foms.len() - 1]
    );
    let mean_viol: f64 = nviol.iter().sum::<usize>() as f64 / nviol.len() as f64;
    println!("mean #violated constraints (non-failed): {mean_viol:.2}");
}
