//! Run bookkeeping: evaluation history, budgets and timing.

use std::time::{Duration, Instant};

use crate::failure::{FailureDiag, FailureKind, RecoveryStage};
use crate::fom::Fom;
use crate::problem::{AnalysisSpec, SizingProblem, SpecResult};

/// One recorded evaluation.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The design point.
    pub x: Vec<f64>,
    /// The raw simulation outcome. For a corner-indexed problem this is
    /// the worst-case merge over the corner plane
    /// ([`SpecResult::worst_case`]).
    pub spec: SpecResult,
    /// Figure of merit (Eq. 4) of this design, on [`Evaluation::spec`].
    pub fom: f64,
    /// Whether all constraints were met (at every corner, for a corner
    /// problem — the merge is pessimal).
    pub feasible: bool,
    /// Per-corner metric vectors, in corner order — populated when the
    /// evaluation ran through the corner grid
    /// ([`Evaluator::evaluate_corners`]); empty on the legacy
    /// single-corner path.
    pub corner_specs: Vec<SpecResult>,
}

impl Evaluation {
    /// The corner-resolved spec vector
    /// `[f0_worst, c_0@corner0, …, c_{m−1}@corner0, c_0@corner1, …]` —
    /// the widened critic input of the corner-resolved surrogate mode
    /// (pairs with [`crate::Fom::tiled`]).
    ///
    /// A failed/non-finite corner contributes the [`SpecResult::failed`]
    /// placeholder constraints instead of its raw values — the same
    /// sanitization the worst-case merge applies to the aggregate — so a
    /// single NaN corner cannot poison surrogate training targets.
    ///
    /// # Panics
    ///
    /// Panics if the evaluation carries no per-corner records.
    pub fn corner_vector(&self) -> Vec<f64> {
        assert!(
            !self.corner_specs.is_empty(),
            "evaluation has no per-corner records"
        );
        let m = self.corner_specs[0].constraints.len();
        let mut v = Vec::with_capacity(1 + m * self.corner_specs.len());
        v.push(self.spec.objective);
        for cs in &self.corner_specs {
            if cs.is_failure() {
                // The same placeholder the aggregate fold produces, from
                // the one source of truth.
                v.extend(SpecResult::failed(m).constraints);
            } else {
                v.extend_from_slice(&cs.constraints);
            }
        }
        v
    }
}

/// Full history of a run: every evaluation in order, plus derived
/// statistics the paper reports (first-feasible index, best-FoM trace).
#[derive(Debug, Clone, Default)]
pub struct History {
    entries: Vec<Evaluation>,
    best_trace: Vec<f64>,
    first_feasible: Option<usize>,
    best_index: Option<usize>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an evaluation, updating the derived statistics.
    pub fn push(&mut self, eval: Evaluation) {
        let idx = self.entries.len();
        if eval.feasible && self.first_feasible.is_none() {
            self.first_feasible = Some(idx + 1); // 1-based "number of sims"
        }
        let better = match self.best_index {
            None => true,
            Some(b) => eval.fom < self.entries[b].fom,
        };
        let best_fom = if better {
            self.best_index = Some(idx);
            eval.fom
        } else {
            self.entries[self
                .best_index
                .expect("best_index set whenever entries exist")]
            .fom
        };
        self.best_trace.push(best_fom);
        self.entries.push(eval);
    }

    /// All evaluations in order.
    pub fn entries(&self) -> &[Evaluation] {
        &self.entries
    }

    /// Number of evaluations so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Best-FoM-so-far trace, one entry per evaluation (the series plotted
    /// in the paper's Figures 3 and 4).
    pub fn best_trace(&self) -> &[f64] {
        &self.best_trace
    }

    /// 1-based index of the first feasible evaluation ("# of simulations"
    /// in the paper's tables), if any.
    pub fn first_feasible(&self) -> Option<usize> {
        self.first_feasible
    }

    /// The best evaluation so far (lowest FoM).
    pub fn best(&self) -> Option<&Evaluation> {
        self.best_index.map(|i| &self.entries[i])
    }

    /// The best *feasible* evaluation (lowest objective among feasible).
    pub fn best_feasible(&self) -> Option<&Evaluation> {
        self.entries
            .iter()
            .filter(|e| e.feasible)
            .min_by(|a, b| a.spec.objective.partial_cmp(&b.spec.objective).unwrap())
    }

    /// Aggregates every failure recorded in the history into a
    /// [`RobustnessReport`]: counts by failure kind, a recovery-ladder
    /// stage histogram, and the retry budget (Newton iterations, step
    /// halvings) the failed solves burned. The per-candidate×corner unit
    /// is each corner record for corner-plane evaluations and the
    /// aggregate spec otherwise.
    pub fn robustness_report(&self) -> RobustnessReport {
        let mut report = RobustnessReport {
            evaluations: self.entries.len(),
            ..RobustnessReport::default()
        };
        for e in &self.entries {
            if e.spec.is_failure() {
                report.failed_evaluations += 1;
            }
            let units: &[SpecResult] = if e.corner_specs.is_empty() {
                std::slice::from_ref(&e.spec)
            } else {
                &e.corner_specs
            };
            for spec in units.iter().filter(|s| s.is_failure()) {
                report.failures += 1;
                match spec.failure_diag() {
                    None => report.untagged += 1,
                    Some(diag) => {
                        report.tally(diag);
                    }
                }
            }
        }
        report
    }
}

/// Batch-level failure statistics derived from a [`History`] by
/// [`History::robustness_report`]. The counting unit is one
/// candidate×corner evaluation (one corner record, or the aggregate spec
/// for single-corner problems).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RobustnessReport {
    /// History entries inspected (one per candidate).
    pub evaluations: usize,
    /// Candidates whose aggregate (worst-case) spec is a failure.
    pub failed_evaluations: usize,
    /// Candidate×corner failures, diagnosed or not.
    pub failures: usize,
    /// Failures that carried no structured diagnosis.
    pub untagged: usize,
    /// Failures forced by a deterministic fault plan.
    pub injected: usize,
    /// Diagnosed failures by kind, in [`FailureKind::ALL`] order.
    pub by_kind: [usize; FailureKind::ALL.len()],
    /// Diagnosed failures by deepest ladder stage reached, in
    /// [`RecoveryStage::ALL`] order.
    pub by_stage: [usize; RecoveryStage::ALL.len()],
    /// Newton iterations burned across all diagnosed failures (the retry
    /// budget the recovery ladders spent before giving up).
    pub iterations_spent: usize,
    /// Transient step halvings burned across all diagnosed failures.
    pub halvings_spent: usize,
    /// Diagnosed failures by analysis label, in first-seen order — the
    /// per-unit attribution the analysis grid carries through assembly
    /// (e.g. `"open-loop: dc operating point"`).
    pub by_analysis: Vec<(String, usize)>,
}

impl RobustnessReport {
    fn tally(&mut self, diag: &FailureDiag) {
        let k = FailureKind::ALL.iter().position(|&k| k == diag.kind);
        self.by_kind[k.expect("every kind is in ALL")] += 1;
        let s = RecoveryStage::ALL.iter().position(|&s| s == diag.stage);
        self.by_stage[s.expect("every stage is in ALL")] += 1;
        if diag.injected {
            self.injected += 1;
        }
        self.iterations_spent += diag.iterations;
        self.halvings_spent += diag.halvings;
        match self
            .by_analysis
            .iter_mut()
            .find(|(name, _)| *name == diag.analysis)
        {
            Some((_, n)) => *n += 1,
            None => self.by_analysis.push((diag.analysis.clone(), 1)),
        }
    }

    /// Diagnosed failures attributed to one analysis label.
    pub fn analysis_count(&self, analysis: &str) -> usize {
        self.by_analysis
            .iter()
            .find(|(name, _)| name == analysis)
            .map_or(0, |(_, n)| *n)
    }

    /// Diagnosed failures of one kind.
    pub fn kind_count(&self, kind: FailureKind) -> usize {
        let i = FailureKind::ALL.iter().position(|&k| k == kind);
        self.by_kind[i.expect("every kind is in ALL")]
    }

    /// Diagnosed failures whose deepest ladder stage was `stage`.
    pub fn stage_count(&self, stage: RecoveryStage) -> usize {
        let i = RecoveryStage::ALL.iter().position(|&s| s == stage);
        self.by_stage[i.expect("every stage is in ALL")]
    }
}

impl std::fmt::Display for RobustnessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failures in {} evaluations ({} candidates failed worst-case; {} injected, {} untagged)",
            self.failures, self.evaluations, self.failed_evaluations, self.injected, self.untagged
        )?;
        for (kind, n) in FailureKind::ALL.iter().zip(self.by_kind) {
            if n > 0 {
                write!(f, "\n  kind {:>15}: {n}", kind.label())?;
            }
        }
        for (stage, n) in RecoveryStage::ALL.iter().zip(self.by_stage) {
            if n > 0 {
                write!(f, "\n  stage {:>15}: {n}", stage.label())?;
            }
        }
        for (analysis, n) in &self.by_analysis {
            write!(f, "\n  analysis {analysis}: {n}")?;
        }
        write!(
            f,
            "\n  retry budget spent: {} NR iterations, {} halvings",
            self.iterations_spent, self.halvings_spent
        )
    }
}

/// The failed outcome a caught testbench panic maps to.
fn panic_spec(num_constraints: usize, message: String) -> SpecResult {
    SpecResult::failed_with(num_constraints, FailureDiag::panic(message))
}

/// Budgeted, history-recording wrapper around a [`SizingProblem`]: the one
/// object optimizers call to spend simulations.
pub struct Evaluator<'a> {
    problem: &'a dyn SizingProblem,
    fom: &'a Fom,
    budget: usize,
    history: History,
    sim_time: Duration,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with a simulation budget.
    pub fn new(problem: &'a dyn SizingProblem, fom: &'a Fom, budget: usize) -> Self {
        Evaluator {
            problem,
            fom,
            budget,
            history: History::new(),
            sim_time: Duration::ZERO,
        }
    }

    /// Runs (and records) one expensive evaluation. A candidate of a
    /// corner-indexed problem transparently runs the whole corner grid
    /// ([`Evaluator::evaluate_corners`]) — optimizers stay unchanged and
    /// consume the aggregated worst-case result.
    ///
    /// # Panics
    ///
    /// Panics if the budget is already exhausted; optimizers must check
    /// [`Evaluator::exhausted`] first.
    pub fn evaluate(&mut self, x: &[f64]) -> Evaluation {
        if self.problem.num_corners() > 1 || self.problem.num_analyses() > 1 {
            return self.evaluate_corners(x);
        }
        assert!(!self.exhausted(), "simulation budget exhausted");
        let t0 = Instant::now();
        let problem = self.problem;
        let spec = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _cand = telemetry::span(telemetry::SpanId::Candidate);
            problem.evaluate(x)
        }))
        .unwrap_or_else(|payload| {
            panic_spec(
                problem.num_constraints(),
                crate::parallel::panic_message(payload),
            )
        });
        self.sim_time += t0.elapsed();
        self.record(x.to_vec(), spec, Vec::new())
    }

    /// Expands one candidate into its corner grid, evaluates every corner,
    /// and records the worst-case merge ([`SpecResult::worst_case`]) with
    /// the per-corner metric vectors attached. One history entry (one unit
    /// of budget) per *candidate*, regardless of corner count — the corner
    /// plane multiplies simulator work, not the paper's "# of sims".
    ///
    /// Delegates to [`Evaluator::evaluate_corners_batch`] with a
    /// single-candidate batch, so even one-candidate-per-iteration
    /// optimizers (DNN-Opt's main loop, SA) fan the K corners out across
    /// worker threads — bit-identical to the serial grid by the batch
    /// path's ordering contract.
    ///
    /// # Panics
    ///
    /// Panics if the budget is already exhausted.
    pub fn evaluate_corners(&mut self, x: &[f64]) -> Evaluation {
        assert!(!self.exhausted(), "simulation budget exhausted");
        let xs = [x.to_vec()];
        self.evaluate_corners_batch(&xs)
            .pop()
            .expect("budget checked above")
    }

    /// Evaluates a whole candidate population, fanning the expensive
    /// simulations out over worker threads (see [`crate::parallel`]), and
    /// records the results **in candidate order** — so histories, best
    /// traces and first-feasible indices are bit-identical to evaluating
    /// the same candidates serially, regardless of thread count.
    ///
    /// Corner-indexed problems route through
    /// [`Evaluator::evaluate_corners_batch`], which parallelizes over the
    /// flattened candidate×corner grid.
    ///
    /// At most [`Evaluator::remaining`] candidates are evaluated; the rest
    /// are silently dropped, which keeps optimizers' budget accounting a
    /// non-event. Returns the recorded evaluations.
    pub fn evaluate_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        if self.problem.num_corners() > 1 || self.problem.num_analyses() > 1 {
            return self.evaluate_corners_batch(xs);
        }
        let take = xs.len().min(self.remaining());
        let batch = &xs[..take];
        let problem = self.problem;
        let _eb = telemetry::span_with(telemetry::SpanId::EvalBatch, take as u64);
        // Each worker thread keeps one context for its whole chunk: a
        // simulator-time accumulator here, and — inside the testbenches —
        // pool-leased solver workspaces that are thereby reused across the
        // chunk's candidates. Durations are timed inside the workers and
        // summed, so `sim_time` keeps the same meaning as the serial
        // `evaluate` path (total simulator time, not batch wall-clock) for
        // any thread count.
        // `try_par_map_with` catches per-candidate panics in both the
        // serial and parallel paths, so a panicking testbench costs one
        // diagnosed failed outcome instead of the whole batch — and the
        // recorded history stays bit-identical for any thread count.
        let (specs, worker_times) = crate::parallel::try_par_map_with(
            batch,
            || Duration::ZERO,
            |spent, x| {
                let _cand = telemetry::span(telemetry::SpanId::Candidate);
                let t0 = Instant::now();
                let spec = problem.evaluate(x);
                *spent += t0.elapsed();
                spec
            },
        );
        self.sim_time += worker_times.iter().sum::<Duration>();
        let m = problem.num_constraints();
        let mut out = Vec::with_capacity(take);
        for (x, spec) in batch.iter().zip(specs) {
            let spec = spec.unwrap_or_else(|msg| panic_spec(m, msg));
            out.push(self.record(x.clone(), spec, Vec::new()));
        }
        out
    }

    /// The batch variant of [`Evaluator::evaluate_corners`]: flattens the
    /// population into the **candidate×corner grid** — or, when the
    /// testbench exposes independent analyses
    /// ([`SizingProblem::num_analyses`] > 1), the finer
    /// **candidate×corner×analysis grid** — and fans that grid out over
    /// worker threads, so sub-candidate parallelism is available even for
    /// a single-candidate-per-iteration optimizer. Per-unit results are
    /// regrouped in fixed (corner, analysis) order and recorded in
    /// candidate order, so histories (including the attached per-corner
    /// vectors) are bit-identical to the serial path for any thread count.
    /// Workers reuse pool-leased per-topology solver workspaces across
    /// their whole share of the grid, exactly like the candidate-level
    /// path.
    pub fn evaluate_corners_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        let take = xs.len().min(self.remaining());
        let batch = &xs[..take];
        let problem = self.problem;
        let k = problem.num_corners();
        let na = problem.num_analyses();
        if na > 1 {
            return self.evaluate_units_batch(batch, k, na);
        }
        let grid: Vec<(usize, usize)> = (0..take)
            .flat_map(|i| (0..k).map(move |c| (i, c)))
            .collect();
        let _eb = telemetry::span_with(telemetry::SpanId::EvalBatch, grid.len() as u64);
        // Per-grid-item panic isolation: one panicking corner evaluation
        // becomes one diagnosed failed corner (which then dominates its
        // candidate's worst-case merge), never a dead batch.
        let (specs, worker_times) = crate::parallel::try_par_map_with(
            &grid,
            || Duration::ZERO,
            |spent, &(i, c)| {
                let _cand = telemetry::span_with(telemetry::SpanId::Candidate, i as u64);
                let _corner = telemetry::span_with(telemetry::SpanId::Corner, c as u64);
                let t0 = Instant::now();
                let spec = problem.evaluate_corner(&batch[i], c);
                *spent += t0.elapsed();
                spec
            },
        );
        self.sim_time += worker_times.iter().sum::<Duration>();
        let m = problem.num_constraints();
        let specs: Vec<SpecResult> = specs
            .into_iter()
            .map(|spec| spec.unwrap_or_else(|msg| panic_spec(m, msg)))
            .collect();
        let mut out = Vec::with_capacity(take);
        for (i, x) in batch.iter().enumerate() {
            let corner_specs = specs[i * k..(i + 1) * k].to_vec();
            let spec = SpecResult::worst_case(&corner_specs);
            out.push(self.record(x.clone(), spec, corner_specs));
        }
        out
    }

    /// The hierarchical leg of [`Evaluator::evaluate_corners_batch`]: the
    /// flattened candidate×corner×analysis unit grid, in `(i, c, a)`
    /// lexicographic order, fanned out round-robin over the worker pool.
    /// Units are reassembled per (candidate, corner) with
    /// [`AnalysisSpec::assemble`] — bit-identical to the monolithic
    /// `evaluate_corner` by the [`SizingProblem::num_analyses`] contract —
    /// and then merged/recorded exactly like the coarser grid. A
    /// single-corner problem records the assembled nominal result raw
    /// (no worst-case fold, no per-corner vectors), preserving the legacy
    /// history shape.
    fn evaluate_units_batch(&mut self, batch: &[Vec<f64>], k: usize, na: usize) -> Vec<Evaluation> {
        let problem = self.problem;
        let grid: Vec<(usize, usize, usize)> = (0..batch.len())
            .flat_map(|i| (0..k).flat_map(move |c| (0..na).map(move |a| (i, c, a))))
            .collect();
        let _eb = telemetry::span_with(telemetry::SpanId::EvalBatch, grid.len() as u64);
        // Per-unit panic isolation: one panicking analysis becomes one
        // hard-failed unit (which then collapses its corner to a diagnosed
        // failed placeholder), never a dead batch.
        let (units, worker_times) = crate::parallel::try_par_map_with(
            &grid,
            || Duration::ZERO,
            |spent, &(i, c, a)| {
                let _cand = telemetry::span_with(telemetry::SpanId::Candidate, i as u64);
                let _corner = telemetry::span_with(telemetry::SpanId::Corner, c as u64);
                let _an = telemetry::span_with(telemetry::SpanId::Analysis, a as u64);
                let t0 = Instant::now();
                let unit = problem.evaluate_analysis(&batch[i], c, a);
                *spent += t0.elapsed();
                unit
            },
        );
        self.sim_time += worker_times.iter().sum::<Duration>();
        let m = problem.num_constraints();
        let units: Vec<AnalysisSpec> = units
            .into_iter()
            .zip(&grid)
            .map(|(unit, &(_, _, a))| {
                let mut unit = unit
                    .unwrap_or_else(|msg| AnalysisSpec::hard_failed(Some(FailureDiag::panic(msg))));
                // Attribute the diagnosis to the unit that produced it: the
                // testbench-level diag only names the inner analysis kind
                // ("dc operating point"), which is ambiguous once several
                // independent units assemble into one corner record. Done
                // identically on every path (serial or grid, any thread
                // count), so histories stay bit-identical.
                if let Some(diag) = unit.failure.as_deref_mut() {
                    let label = problem.analysis_name(a);
                    if !diag.analysis.starts_with(&label) {
                        diag.analysis = format!("{label}: {}", diag.analysis);
                    }
                }
                unit
            })
            .collect();
        let mut out = Vec::with_capacity(batch.len());
        for (i, x) in batch.iter().enumerate() {
            let corner_specs: Vec<SpecResult> = (0..k)
                .map(|c| {
                    let base = (i * k + c) * na;
                    AnalysisSpec::assemble(m, &units[base..base + na])
                })
                .collect();
            if k <= 1 {
                let spec = corner_specs
                    .into_iter()
                    .next()
                    .expect("single-corner plane has corner 0");
                out.push(self.record(x.clone(), spec, Vec::new()));
            } else {
                let spec = SpecResult::worst_case(&corner_specs);
                out.push(self.record(x.clone(), spec, corner_specs));
            }
        }
        out
    }

    /// Scores, records and returns one finished evaluation.
    fn record(
        &mut self,
        x: Vec<f64>,
        spec: SpecResult,
        corner_specs: Vec<SpecResult>,
    ) -> Evaluation {
        let fom = self.fom.value(&spec);
        let eval = Evaluation {
            x,
            feasible: spec.feasible(),
            fom,
            spec,
            corner_specs,
        };
        self.history.push(eval.clone());
        eval
    }

    /// True when no budget remains.
    pub fn exhausted(&self) -> bool {
        self.history.len() >= self.budget
    }

    /// Simulations remaining.
    pub fn remaining(&self) -> usize {
        self.budget.saturating_sub(self.history.len())
    }

    /// Simulations used.
    pub fn used(&self) -> usize {
        self.history.len()
    }

    /// The underlying problem.
    pub fn problem(&self) -> &dyn SizingProblem {
        self.problem
    }

    /// The FoM in use.
    pub fn fom(&self) -> &Fom {
        self.fom
    }

    /// Recorded history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Wall-clock time spent inside [`SizingProblem::evaluate`].
    pub fn sim_time(&self) -> Duration {
        self.sim_time
    }

    /// Consumes the evaluator, returning the history and simulation time.
    pub fn into_parts(self) -> (History, Duration) {
        (self.history, self.sim_time)
    }
}

/// Completed run: what an [`crate::Optimizer`] returns.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Name of the optimizer that produced the run.
    pub optimizer: String,
    /// Full evaluation history.
    pub history: History,
    /// Wall-clock time spent in surrogate-model fitting (the paper's
    /// "modeling time").
    pub model_time: Duration,
    /// Wall-clock time spent in simulations.
    pub sim_time: Duration,
    /// Total run wall-clock time.
    pub total_time: Duration,
}

impl RunResult {
    /// Best feasible objective, if a feasible design was found.
    pub fn best_feasible_objective(&self) -> Option<f64> {
        self.history.best_feasible().map(|e| e.spec.objective)
    }

    /// 1-based simulation count at which the first feasible design
    /// appeared.
    pub fn sims_to_feasible(&self) -> Option<usize> {
        self.history.first_feasible()
    }
}

/// End-of-run observability report: the history's robustness aggregate
/// plus — when the telemetry plane is active (`DNNOPT_TRACE` set or a sink
/// installed programmatically) — the drained telemetry summary with span
/// timings and solver/pool metric histograms.
///
/// [`RunReport::collect`] drains the telemetry plane, so collect **once**,
/// at the end of the run; a second collect returns empty aggregates. The
/// drain also writes the configured JSONL/Chrome trace file, making this
/// the natural last statement of an example or service run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Failure taxonomy aggregated from the run's history.
    pub robustness: RobustnessReport,
    /// Drained telemetry aggregates; `None` when the plane is disabled.
    pub telemetry: Option<telemetry::Summary>,
}

impl RunReport {
    /// Builds the report for a finished run and drains/writes the
    /// telemetry plane's aggregates and event buffers.
    pub fn collect(history: &History) -> Self {
        RunReport {
            robustness: history.robustness_report(),
            telemetry: telemetry::finish(),
        }
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "robustness: {}", self.robustness)?;
        if let Some(t) = &self.telemetry {
            write!(f, "\n{t}")?;
        }
        Ok(())
    }
}

/// When an optimizer should stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopPolicy {
    /// Use the whole simulation budget (needed for FoM-curve figures).
    Exhaust,
    /// Return as soon as a feasible design is simulated (paper Alg. 1
    /// line 11, and the industrial Table V protocol).
    FirstFeasible,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_problems::Sphere;

    fn eval(fom: f64, feasible: bool) -> Evaluation {
        Evaluation {
            x: vec![0.0],
            spec: SpecResult {
                failure: None,
                objective: fom,
                constraints: vec![],
            },
            fom,
            feasible,
            corner_specs: Vec::new(),
        }
    }

    #[test]
    fn best_trace_is_monotone() {
        let mut h = History::new();
        for f in [5.0, 3.0, 4.0, 1.0, 2.0] {
            h.push(eval(f, false));
        }
        assert_eq!(h.best_trace(), &[5.0, 3.0, 3.0, 1.0, 1.0]);
        assert_eq!(h.best().unwrap().fom, 1.0);
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn first_feasible_is_one_based_and_sticky() {
        let mut h = History::new();
        h.push(eval(5.0, false));
        h.push(eval(4.0, true));
        h.push(eval(3.0, true));
        assert_eq!(h.first_feasible(), Some(2));
    }

    #[test]
    fn best_feasible_prefers_objective() {
        let mut h = History::new();
        // Feasible but worse objective…
        let mut a = eval(0.5, true);
        a.spec.objective = 10.0;
        h.push(a);
        // Infeasible with great objective must be ignored…
        let mut b = eval(0.1, false);
        b.spec.objective = 0.1;
        h.push(b);
        // Feasible with better objective wins.
        let mut c = eval(0.6, true);
        c.spec.objective = 3.0;
        h.push(c);
        assert_eq!(h.best_feasible().unwrap().spec.objective, 3.0);
    }

    #[test]
    fn evaluator_enforces_budget() {
        let p = Sphere { d: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let mut ev = Evaluator::new(&p, &fom, 3);
        assert_eq!(ev.remaining(), 3);
        ev.evaluate(&[0.3, 0.3]);
        ev.evaluate(&[0.5, 0.5]);
        assert!(!ev.exhausted());
        ev.evaluate(&[0.1, 0.1]);
        assert!(ev.exhausted());
        assert_eq!(ev.used(), 3);
        assert_eq!(ev.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "budget exhausted")]
    fn evaluator_panics_past_budget() {
        let p = Sphere { d: 1 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let mut ev = Evaluator::new(&p, &fom, 1);
        ev.evaluate(&[0.3]);
        ev.evaluate(&[0.4]);
    }

    /// A three-corner analytic problem: corner `k` tightens the constraint
    /// by `0.1·k` and inflates the objective by `k`.
    struct CorneredSphere;

    impl SizingProblem for CorneredSphere {
        fn dim(&self) -> usize {
            2
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; 2], vec![1.0; 2])
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn num_corners(&self) -> usize {
            3
        }
        fn corner_name(&self, k: usize) -> String {
            format!("tightened-{k}")
        }
        fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
            SpecResult {
                failure: None,
                objective: x[0] + x[1] + k as f64,
                constraints: vec![0.3 + 0.1 * k as f64 - x[0]],
            }
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            crate::problem::evaluate_worst_case(self, x)
        }
    }

    #[test]
    fn evaluator_expands_corner_problems_transparently() {
        let p = CorneredSphere;
        let fom = Fom::uniform(1.0, 1);
        let mut ev = Evaluator::new(&p, &fom, 4);
        // `evaluate` routes through the grid: worst case over 3 corners.
        let e = ev.evaluate(&[0.6, 0.2]);
        assert_eq!(e.corner_specs.len(), 3);
        assert_eq!(e.spec.objective, 0.6 + 0.2 + 2.0); // worst corner
        assert_eq!(e.spec.constraints, vec![0.5 - 0.6]); // tightest corner
        assert!(e.feasible);
        // One history entry per candidate, not per corner.
        assert_eq!(ev.used(), 1);
        // The corner-resolved vector: worst f0 then per-corner constraints.
        let v = e.corner_vector();
        assert_eq!(v.len(), 1 + 3);
        assert_eq!(v[0], e.spec.objective);
        assert_eq!(v[1], 0.3 - 0.6);
        assert_eq!(v[3], 0.5 - 0.6);
        // Feasible only when every corner passes.
        let e2 = ev.evaluate(&[0.45, 0.0]);
        assert!(!e2.feasible, "corner 2 requires x0 > 0.5");
        // Batch path produces identical records.
        let batch = ev.evaluate_batch(&[vec![0.6, 0.2], vec![0.45, 0.0]]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].spec, e.spec);
        assert_eq!(batch[0].corner_specs.len(), 3);
        for (a, b) in batch[0].corner_specs.iter().zip(&e.corner_specs) {
            assert_eq!(a, b);
        }
        assert_eq!(batch[1].feasible, e2.feasible);
        assert_eq!(ev.used(), 4);
        assert!(ev.exhausted());
    }

    #[test]
    fn corner_grid_serial_matches_parallel() {
        let p = CorneredSphere;
        let fom = Fom::uniform(1.0, 1);
        let xs: Vec<Vec<f64>> = (0..17)
            .map(|i| vec![i as f64 / 16.0, 1.0 - i as f64 / 16.0])
            .collect();
        crate::parallel::set_max_threads(1);
        let mut ev_s = Evaluator::new(&p, &fom, xs.len());
        let serial = ev_s.evaluate_batch(&xs);
        crate::parallel::set_max_threads(8);
        let mut ev_p = Evaluator::new(&p, &fom, xs.len());
        let par = ev_p.evaluate_batch(&xs);
        crate::parallel::set_max_threads(0);
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.fom.to_bits(), b.fom.to_bits());
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.corner_specs, b.corner_specs);
        }
    }

    /// [`CorneredSphere`] split into two independent analyses per corner:
    /// analysis 0 owns the objective, analysis 1 the constraint. The math
    /// is identical, so histories must match the monolithic problem
    /// bit-for-bit through the finer unit grid.
    struct SplitCorneredSphere;

    impl SizingProblem for SplitCorneredSphere {
        fn dim(&self) -> usize {
            2
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; 2], vec![1.0; 2])
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn num_corners(&self) -> usize {
            3
        }
        fn num_analyses(&self) -> usize {
            2
        }
        fn analysis_name(&self, a: usize) -> String {
            ["objective", "constraint"][a].to_string()
        }
        fn evaluate_analysis(&self, x: &[f64], k: usize, a: usize) -> AnalysisSpec {
            match a {
                0 => AnalysisSpec {
                    objective: Some(x[0] + x[1] + k as f64),
                    ..AnalysisSpec::partial()
                },
                1 => AnalysisSpec {
                    constraints: vec![(0, 0.3 + 0.1 * k as f64 - x[0])],
                    ..AnalysisSpec::partial()
                },
                _ => panic!("analysis {a} out of range"),
            }
        }
        fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
            AnalysisSpec::assemble(
                1,
                &[
                    self.evaluate_analysis(x, k, 0),
                    self.evaluate_analysis(x, k, 1),
                ],
            )
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            crate::problem::evaluate_worst_case(self, x)
        }
    }

    #[test]
    fn analysis_grid_matches_monolithic_grid_at_any_thread_count() {
        let fom = Fom::uniform(1.0, 1);
        let xs: Vec<Vec<f64>> = (0..11)
            .map(|i| vec![i as f64 / 10.0, 1.0 - i as f64 / 10.0])
            .collect();
        let mut ev_mono = Evaluator::new(&CorneredSphere, &fom, xs.len());
        let reference = ev_mono.evaluate_batch(&xs);
        let split = SplitCorneredSphere;
        // 1, an even, and an odd thread count (odd catches remainder bugs
        // in the round-robin reassembly).
        for threads in [1usize, 2, 7] {
            crate::parallel::set_max_threads(threads);
            let mut ev = Evaluator::new(&split, &fom, xs.len());
            let out = ev.evaluate_batch(&xs);
            crate::parallel::set_max_threads(0);
            assert_eq!(out.len(), reference.len(), "threads={threads}");
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.fom.to_bits(), b.fom.to_bits(), "threads={threads}");
                assert_eq!(a.spec, b.spec, "threads={threads}");
                assert_eq!(a.corner_specs, b.corner_specs, "threads={threads}");
            }
        }
    }

    /// Single-corner, two-analysis problem whose second analysis panics on
    /// a marker candidate.
    struct PanickyAnalysis;

    impl SizingProblem for PanickyAnalysis {
        fn dim(&self) -> usize {
            1
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0], vec![1.0])
        }
        fn num_constraints(&self) -> usize {
            2
        }
        fn num_analyses(&self) -> usize {
            2
        }
        fn evaluate_analysis(&self, x: &[f64], _k: usize, a: usize) -> AnalysisSpec {
            match a {
                0 => AnalysisSpec {
                    objective: Some(x[0]),
                    constraints: vec![(0, -x[0])],
                    ..AnalysisSpec::partial()
                },
                1 => {
                    assert!(x[0] != 0.5, "injected analysis panic");
                    AnalysisSpec {
                        constraints: vec![(1, x[0] - 2.0)],
                        ..AnalysisSpec::partial()
                    }
                }
                _ => panic!("analysis {a} out of range"),
            }
        }
        fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
            AnalysisSpec::assemble(
                2,
                &[
                    self.evaluate_analysis(x, k, 0),
                    self.evaluate_analysis(x, k, 1),
                ],
            )
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            self.evaluate_corner(x, 0)
        }
    }

    #[test]
    fn single_corner_analysis_grid_keeps_legacy_history_shape() {
        let p = PanickyAnalysis;
        let fom = Fom::uniform(1.0, 2);
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 8.0]).collect();
        // xs[4] = [0.5] panics in analysis 1. The batch must survive with
        // the panicking candidate collapsed to a diagnosed failure, the
        // rest intact, and — single corner — no per-corner records.
        let mut batches = Vec::new();
        for threads in [1usize, 3] {
            crate::parallel::set_max_threads(threads);
            let mut ev = Evaluator::new(&p, &fom, xs.len());
            let out = ev.evaluate_batch(&xs);
            crate::parallel::set_max_threads(0);
            for (i, e) in out.iter().enumerate() {
                assert!(e.corner_specs.is_empty(), "legacy single-corner shape");
                if i == 4 {
                    assert!(e.spec.is_failure());
                    let d = e.spec.failure_diag().expect("panic is diagnosed");
                    assert_eq!(d.kind, FailureKind::Panic);
                } else {
                    assert_eq!(e.spec, p.evaluate(&xs[i]), "candidate {i}");
                }
            }
            batches.push(out);
        }
        // Bit-identical across thread counts (diagnoses included).
        for (a, b) in batches[0].iter().zip(&batches[1]) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(
                a.spec.failure_diag().map(|d| format!("{d:?}")),
                b.spec.failure_diag().map(|d| format!("{d:?}"))
            );
        }
    }

    #[test]
    #[should_panic(expected = "no per-corner records")]
    fn corner_vector_requires_corner_records() {
        let _ = eval(1.0, false).corner_vector();
    }

    #[test]
    fn corner_vector_sanitizes_failed_corners() {
        // A NaN corner must contribute the finite failed placeholder, not
        // raw NaN — otherwise corner-critic training targets go NaN and
        // every network weight follows.
        let good = SpecResult {
            failure: None,
            objective: 1.0,
            constraints: vec![-0.5, 0.25],
        };
        let nan = SpecResult {
            failure: None,
            objective: 1.0,
            constraints: vec![f64::NAN, 0.0],
        };
        let e = Evaluation {
            x: vec![0.0],
            spec: SpecResult::worst_case(&[good.clone(), nan.clone()]),
            fom: 0.0,
            feasible: false,
            corner_specs: vec![good, nan],
        };
        let v = e.corner_vector();
        assert_eq!(v.len(), 1 + 2 * 2);
        assert!(v.iter().all(|x| x.is_finite()), "no NaN may survive: {v:?}");
        // The healthy corner's values pass through untouched; the failed
        // corner is the placeholder.
        assert_eq!(&v[1..3], &[-0.5, 0.25]);
        assert_eq!(&v[3..5], &[1e12, 1e12]);
    }

    /// Sphere that panics whenever the first coordinate is exactly 0.5.
    struct PanickySphere;

    impl SizingProblem for PanickySphere {
        fn dim(&self) -> usize {
            2
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; 2], vec![1.0; 2])
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            assert!(x[0] != 0.5, "injected testbench panic");
            SpecResult {
                failure: None,
                objective: x[0] + x[1],
                constraints: vec![0.1 - x[0]],
            }
        }
    }

    #[test]
    fn evaluator_maps_panics_to_diagnosed_failures() {
        let p = PanickySphere;
        let fom = Fom::uniform(1.0, 1);
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 8.0, 0.5]).collect();
        // xs[4] = [0.5, 0.5] panics. Batch must survive in order, serial
        // and parallel, with identical records.
        let mut batches = Vec::new();
        for threads in [1usize, 4] {
            crate::parallel::set_max_threads(threads);
            let mut ev = Evaluator::new(&p, &fom, xs.len());
            let out = ev.evaluate_batch(&xs);
            crate::parallel::set_max_threads(0);
            assert_eq!(out.len(), xs.len());
            for (i, e) in out.iter().enumerate() {
                if i == 4 {
                    assert!(e.spec.is_failure());
                    let d = e.spec.failure_diag().expect("panic must be diagnosed");
                    assert_eq!(d.kind, FailureKind::Panic);
                    assert!(d.analysis.contains("injected testbench panic"));
                } else {
                    assert!(!e.spec.is_failure());
                    assert_eq!(e.x, xs[i]);
                }
            }
            batches.push(out);
        }
        for (a, b) in batches[0].iter().zip(&batches[1]) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.fom.to_bits(), b.fom.to_bits());
        }
        // The single-candidate path degrades identically.
        let mut ev = Evaluator::new(&p, &fom, 1);
        let e = ev.evaluate(&[0.5, 0.5]);
        assert_eq!(e.spec.failure_diag().unwrap().kind, FailureKind::Panic);
    }

    #[test]
    fn robustness_report_tallies_kinds_stages_and_budget() {
        use crate::failure::FailureDiag;
        let mut h = History::new();
        h.push(eval(1.0, true)); // healthy
                                 // A diagnosed solver failure.
        let mut a = eval(2.0, false);
        a.spec = SpecResult::failed_with(
            1,
            FailureDiag {
                kind: FailureKind::Singular,
                analysis: "dc operating point".into(),
                stage: RecoveryStage::SourceStepping,
                iterations: 40,
                halvings: 0,
                injected: true,
            },
        );
        h.push(a);
        // A corner-plane entry: one healthy corner, one step-underflow.
        let good = SpecResult {
            failure: None,
            objective: 0.5,
            constraints: vec![-0.1],
        };
        let bad = SpecResult::failed_with(
            1,
            FailureDiag {
                kind: FailureKind::StepUnderflow,
                analysis: "transient".into(),
                stage: RecoveryStage::StepHalving,
                iterations: 12,
                halvings: 9,
                injected: false,
            },
        );
        let mut b = eval(3.0, false);
        b.spec = SpecResult::worst_case(&[good.clone(), bad.clone()]);
        b.corner_specs = vec![good, bad];
        h.push(b);
        // An untagged legacy failure.
        let mut c = eval(4.0, false);
        c.spec = SpecResult::failed(1);
        h.push(c);

        let r = h.robustness_report();
        assert_eq!(r.evaluations, 4);
        assert_eq!(r.failed_evaluations, 3);
        assert_eq!(r.failures, 3); // 1 aggregate + 1 corner + 1 untagged
        assert_eq!(r.untagged, 1);
        assert_eq!(r.injected, 1);
        assert_eq!(r.kind_count(FailureKind::Singular), 1);
        assert_eq!(r.kind_count(FailureKind::StepUnderflow), 1);
        assert_eq!(r.kind_count(FailureKind::Panic), 0);
        assert_eq!(r.stage_count(RecoveryStage::SourceStepping), 1);
        assert_eq!(r.stage_count(RecoveryStage::StepHalving), 1);
        assert_eq!(r.iterations_spent, 52);
        assert_eq!(r.halvings_spent, 9);
        let text = r.to_string();
        assert!(text.contains("singular"));
        assert!(text.contains("step-halving"));
        assert!(text.contains("52 NR iterations"));
    }

    #[test]
    fn evaluator_records_feasibility() {
        let p = Sphere { d: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let mut ev = Evaluator::new(&p, &fom, 10);
        let good = ev.evaluate(&[0.3, 0.3]);
        assert!(good.feasible);
        let bad = ev.evaluate(&[0.0, 0.0]);
        assert!(!bad.feasible);
        assert_eq!(ev.history().first_feasible(), Some(1));
    }
}
