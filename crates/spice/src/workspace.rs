//! Reusable solver state for the Newton-Raphson engines.
//!
//! The DC and transient engines linearize and solve the same-sized MNA
//! system every Newton iteration, every gmin/source-stepping retry, and
//! every transient timestep. A [`NewtonWorkspace`] owns all of that state —
//! the [`RealStamper`], the LU factors, and the solution scratch vector —
//! so the hot loop performs **zero heap allocations** per iteration.
//!
//! One workspace per circuit topology; it is reused across solves and
//! resizes itself automatically if handed a circuit with a different
//! unknown count. For population-parallel optimization, give each worker
//! thread its own workspace (see `opt::parallel`).

use linalg::LuWorkspace;

use crate::netlist::Circuit;
use crate::stamp::RealStamper;

/// Preallocated state for repeated Newton solves on one circuit topology.
///
/// # Example
///
/// ```
/// use spice::{Circuit, NewtonWorkspace, SimOptions, Waveform, GND};
///
/// let mut c = Circuit::new();
/// let a = c.node("a");
/// c.add_vsource("V1", a, GND, Waveform::Dc(2.0)).unwrap();
/// c.add_resistor("R1", a, GND, 1e3).unwrap();
/// let mut ws = NewtonWorkspace::new(&c);
/// // Repeated solves reuse the same buffers.
/// for _ in 0..3 {
///     let op = spice::op_with_workspace(&c, &SimOptions::default(), None, &mut ws).unwrap();
///     assert!((op.voltage(a) - 2.0).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct NewtonWorkspace {
    /// The MNA system under assembly.
    pub(crate) st: RealStamper,
    /// LU factors of the linearized system.
    pub(crate) lu: LuWorkspace,
    /// Newton-step solution buffer.
    pub(crate) x_new: Vec<f64>,
    /// Unknown count the buffers are sized for.
    n: usize,
}

impl NewtonWorkspace {
    /// Creates a workspace sized for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.num_unknowns();
        NewtonWorkspace {
            st: RealStamper::new(circuit),
            lu: LuWorkspace::new(n),
            x_new: vec![0.0; n],
            n,
        }
    }

    /// Number of unknowns the workspace is currently sized for.
    pub fn num_unknowns(&self) -> usize {
        self.n
    }

    /// Re-targets the workspace at `circuit`, rebuilding buffers only when
    /// the unknown count changed.
    pub(crate) fn ensure(&mut self, circuit: &Circuit) {
        let n = circuit.num_unknowns();
        if n != self.n || self.st.num_nodes() != circuit.num_nodes() {
            *self = NewtonWorkspace::new(circuit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GND;
    use crate::waveform::Waveform;

    #[test]
    fn workspace_adapts_to_circuit_growth() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, GND, Waveform::Dc(1.0)).unwrap();
        c.add_resistor("R1", a, GND, 1e3).unwrap();
        let mut ws = NewtonWorkspace::new(&c);
        assert_eq!(ws.num_unknowns(), c.num_unknowns());
        let b = c.node("b");
        c.add_resistor("R2", a, b, 1e3).unwrap();
        c.add_resistor("R3", b, GND, 1e3).unwrap();
        ws.ensure(&c);
        assert_eq!(ws.num_unknowns(), c.num_unknowns());
    }
}
