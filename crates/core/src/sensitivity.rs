//! Sensitivity analysis and design-space pruning (paper §II-C, Eq. 7).
//!
//! For large industrial circuits the paper perturbs each design variable
//! around its nominal value, records the impact on every spec
//! (`S_ij = δf_i/δd_j`), and keeps only the variables whose sensitivity
//! exceeds a threshold — "empirically, this analysis prunes design search
//! space effectively, allowing us to work on large scale circuits."

use linalg::Matrix;
use opt::{SizingProblem, SpecResult};

/// Result of a sensitivity sweep: the `(m+1)×d` sensitivity matrix of
/// Eq. 7, computed with central differences on range-normalized variables.
#[derive(Debug, Clone)]
pub struct SensitivityReport {
    /// `s[(i, j)] = |δf_i/δu_j|` where `u_j` is variable `j` mapped to the
    /// unit cube. Row 0 is the objective; row `i ≥ 1` is constraint `i−1`.
    s: Matrix,
    /// Variable names for reporting.
    names: Vec<String>,
}

impl SensitivityReport {
    /// Runs the sweep around `x0` with per-variable perturbation
    /// `step` (fraction of each variable's range, e.g. 0.05).
    ///
    /// On a corner-indexed problem the sweep differentiates the
    /// **corner-resolved** spec vector (`K·(1 + m)` rows: every corner's
    /// objective and constraints, in corner order), never the worst-case
    /// fold — the max over corners has zero derivative with respect to
    /// any variable whose effect is confined to a non-dominant corner,
    /// which would silently prune variables that matter only at one
    /// corner. This keeps e.g. the level shifter's sweep at the paper's
    /// full 60 specs (plus its six per-corner energy rows).
    ///
    /// Costs `2·d` full evaluations (central differences; the nominal
    /// itself is not needed) — each a whole corner sweep on a corner
    /// problem, exactly like `evaluate`. The perturbation points fan out
    /// over worker threads (`opt::parallel`), with results consumed in
    /// variable order so the matrix is thread-count independent.
    ///
    /// # Panics
    ///
    /// Panics if `x0` has the wrong dimension or `step` is not in (0, 0.5).
    pub fn compute(problem: &dyn SizingProblem, x0: &[f64], step: f64) -> Self {
        let d = problem.dim();
        assert_eq!(x0.len(), d, "nominal dimension mismatch");
        assert!(
            step > 0.0 && step < 0.5,
            "step must be a small range fraction"
        );
        let (lb, ub) = problem.bounds();
        let m = problem.num_constraints();
        let k = problem.num_corners();
        // Corner-resolved spec vector: each corner's full
        // `[f0, f1, …, fm]` in corner order, so *every* per-corner spec —
        // objective included — votes on its own row.
        let spec_vector = |x: &[f64]| -> Vec<f64> {
            if k <= 1 {
                return clip_spec(problem.evaluate(x));
            }
            let mut v = Vec::with_capacity(k * (1 + m));
            for c in 0..k {
                let spec = problem.evaluate_corner(x, c);
                v.push(spec.objective);
                v.extend_from_slice(&spec.constraints);
            }
            clip_values(v)
        };
        let rows = k * (1 + m);
        // The 2·d perturbation points (and their corners) are independent
        // simulations: evaluate them like a population batch.
        let mut points = Vec::with_capacity(2 * d);
        let mut dus = Vec::with_capacity(d);
        for j in 0..d {
            let range = (ub[j] - lb[j]).max(1e-300);
            let h = step * range;
            let mut xp = x0.to_vec();
            xp[j] = (x0[j] + h).min(ub[j]);
            let mut xm = x0.to_vec();
            xm[j] = (x0[j] - h).max(lb[j]);
            dus.push((xp[j] - xm[j]) / range); // actual normalized step
            points.push(xp);
            points.push(xm);
        }
        let specs = opt::parallel::par_map(&points, |x| spec_vector(x));
        let mut s = Matrix::zeros(rows, d);
        for j in 0..d {
            let (fp, fm) = (&specs[2 * j], &specs[2 * j + 1]);
            for i in 0..rows {
                let diff = (fp[i] - fm[i]).abs();
                s[(i, j)] = if dus[j] > 0.0 { diff / dus[j] } else { 0.0 };
            }
        }
        SensitivityReport {
            s,
            names: problem.variable_names(),
        }
    }

    /// The raw sensitivity matrix. Single-corner problems: row 0 is the
    /// objective, rows `1..=m` the constraints. Corner-indexed problems:
    /// `K` blocks of `1 + m` rows (objective then constraints), one per
    /// corner in corner order.
    pub fn matrix(&self) -> &Matrix {
        &self.s
    }

    /// Per-variable criticality score in `[0, 1]`: each spec row is first
    /// winsorized (cliff protection) and normalized by its own largest
    /// entry, so every spec "votes" with equal weight regardless of units
    /// or steepness; the score of a variable is its maximum vote across
    /// specs.
    pub fn scores(&self) -> Vec<f64> {
        let d = self.s.cols();
        let mut scores = vec![0.0_f64; d];
        for i in 0..self.s.rows() {
            // Winsorize the row at 30x its median positive entry: a
            // functional cliff produces one entry orders of magnitude above
            // the rest, which would otherwise zero out every smooth
            // response after normalization.
            let mut row: Vec<f64> = (0..d).map(|j| self.s[(i, j)]).collect();
            let mut pos: Vec<f64> = row.iter().copied().filter(|v| *v > 0.0).collect();
            if pos.is_empty() {
                continue;
            }
            pos.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = pos[pos.len() / 2];
            if median > 0.0 {
                let cap = 30.0 * median;
                for v in &mut row {
                    *v = v.min(cap);
                }
            }
            let row_max = row.iter().copied().fold(0.0_f64, f64::max);
            if row_max <= 0.0 {
                continue;
            }
            for (j, sc) in scores.iter_mut().enumerate() {
                *sc = sc.max(row[j] / row_max);
            }
        }
        scores
    }

    /// Indices of the variables whose normalized score exceeds `thresh`
    /// (the paper's user-defined threshold), sorted by decreasing score.
    pub fn critical_variables(&self, thresh: f64) -> Vec<usize> {
        let scores = self.scores();
        let mut idx: Vec<usize> = (0..scores.len()).filter(|&j| scores[j] > thresh).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        idx
    }

    /// Human-readable table of scores.
    pub fn table(&self) -> String {
        let scores = self.scores();
        let mut out = String::from("variable          score\n");
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        for j in order {
            out.push_str(&format!("{:<16} {:>7.4}\n", self.names[j], scores[j]));
        }
        out
    }
}

fn clip_spec(spec: SpecResult) -> Vec<f64> {
    clip_values(spec.as_vector())
}

fn clip_values(mut v: Vec<f64>) -> Vec<f64> {
    for x in &mut v {
        *x = x.clamp(-1e6, 1e6);
    }
    v
}

/// A pruned view of a large problem: only the `active` variables move; the
/// rest stay pinned at the nominal design (paper Alg. 1 prerequisite).
pub struct ReducedProblem<'a> {
    inner: &'a dyn SizingProblem,
    base: Vec<f64>,
    active: Vec<usize>,
}

impl<'a> ReducedProblem<'a> {
    /// Creates the reduced problem.
    ///
    /// # Panics
    ///
    /// Panics if `active` contains an out-of-range or duplicate index, or
    /// `base` has the wrong length.
    pub fn new(inner: &'a dyn SizingProblem, base: Vec<f64>, active: Vec<usize>) -> Self {
        assert_eq!(base.len(), inner.dim(), "base dimension mismatch");
        let mut seen = vec![false; inner.dim()];
        for &j in &active {
            assert!(j < inner.dim(), "active index out of range");
            assert!(!seen[j], "duplicate active index");
            seen[j] = true;
        }
        ReducedProblem {
            inner,
            base,
            active,
        }
    }

    /// Expands a reduced design vector into the full space.
    pub fn expand(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.active.len(), "reduced dimension mismatch");
        let mut full = self.base.clone();
        for (k, &j) in self.active.iter().enumerate() {
            full[j] = x[k];
        }
        full
    }

    /// The active variable indices.
    pub fn active(&self) -> &[usize] {
        &self.active
    }
}

impl SizingProblem for ReducedProblem<'_> {
    fn dim(&self) -> usize {
        self.active.len()
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let (lb, ub) = self.inner.bounds();
        (
            self.active.iter().map(|&j| lb[j]).collect(),
            self.active.iter().map(|&j| ub[j]).collect(),
        )
    }

    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }

    fn num_corners(&self) -> usize {
        self.inner.num_corners()
    }

    fn corner_name(&self, k: usize) -> String {
        self.inner.corner_name(k)
    }

    fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
        self.inner.evaluate_corner(&self.expand(x), k)
    }

    fn evaluate(&self, x: &[f64]) -> SpecResult {
        self.inner.evaluate(&self.expand(x))
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn variable_names(&self) -> Vec<String> {
        let names = self.inner.variable_names();
        self.active.iter().map(|&j| names[j].clone()).collect()
    }

    fn nominal(&self) -> Vec<f64> {
        self.active.iter().map(|&j| self.base[j]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Only variables 0 and 2 matter; 1 and 3 are inert.
    struct PartiallyInert;

    impl SizingProblem for PartiallyInert {
        fn dim(&self) -> usize {
            4
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; 4], vec![1.0; 4])
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            SpecResult {
                failure: None,
                objective: 3.0 * x[0] + 0.5 * x[2],
                constraints: vec![x[2] - 0.5],
            }
        }
    }

    #[test]
    fn sensitivity_ranks_variables_correctly() {
        let p = PartiallyInert;
        let rep = SensitivityReport::compute(&p, &[0.5; 4], 0.05);
        let scores = rep.scores();
        // x0 dominates the objective row; x2 dominates the constraint row —
        // both earn full scores under per-spec normalization.
        assert!(scores[0] > 0.9, "x0 dominates the objective: {scores:?}");
        assert!(scores[2] > 0.9, "x2 dominates the constraint: {scores:?}");
        assert!(
            scores[1] < 1e-9 && scores[3] < 1e-9,
            "inert vars: {scores:?}"
        );
    }

    #[test]
    fn critical_set_prunes_inert_variables() {
        let p = PartiallyInert;
        let rep = SensitivityReport::compute(&p, &[0.5; 4], 0.05);
        let crit = rep.critical_variables(0.05);
        assert_eq!(crit, vec![0, 2]);
        assert!(rep.table().contains("x0"));
    }

    #[test]
    fn reduced_problem_roundtrip() {
        let p = PartiallyInert;
        let red = ReducedProblem::new(&p, vec![0.5; 4], vec![0, 2]);
        assert_eq!(red.dim(), 2);
        assert_eq!(red.num_constraints(), 1);
        let (lb, ub) = red.bounds();
        assert_eq!(lb.len(), 2);
        assert_eq!(ub.len(), 2);
        let full = red.expand(&[0.1, 0.9]);
        assert_eq!(full, vec![0.1, 0.5, 0.9, 0.5]);
        // Evaluation matches the expanded evaluation.
        let a = red.evaluate(&[0.1, 0.9]);
        let b = p.evaluate(&full);
        assert_eq!(a, b);
        assert_eq!(
            red.variable_names(),
            vec!["x0".to_string(), "x2".to_string()]
        );
    }

    #[test]
    #[should_panic(expected = "active index out of range")]
    fn bad_active_index_panics() {
        let p = PartiallyInert;
        let _ = ReducedProblem::new(&p, vec![0.5; 4], vec![7]);
    }

    /// Two-corner wrapper over [`PartiallyInert`]: corner 1 tightens the
    /// constraint.
    struct CorneredInert;

    impl SizingProblem for CorneredInert {
        fn dim(&self) -> usize {
            4
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; 4], vec![1.0; 4])
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn num_corners(&self) -> usize {
            2
        }
        fn corner_name(&self, k: usize) -> String {
            format!("c{k}")
        }
        fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
            SpecResult {
                failure: None,
                objective: 3.0 * x[0] + 0.5 * x[2],
                constraints: vec![x[2] - 0.5 + 0.1 * k as f64],
            }
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            opt::evaluate_worst_case(self, x)
        }
    }

    /// A variable whose effect is confined to a corner the worst-case
    /// fold never selects: corner 0's constraint is a dominant constant,
    /// so `evaluate` (the max) is flat in `x1` — only the corner-resolved
    /// sweep can see it.
    struct MaskedCornerVar;

    impl SizingProblem for MaskedCornerVar {
        fn dim(&self) -> usize {
            2
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; 2], vec![1.0; 2])
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn num_corners(&self) -> usize {
            2
        }
        fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
            if k == 0 {
                // Dominant constant corner: the fold is flat in x.
                SpecResult {
                    failure: None,
                    objective: 10.0,
                    constraints: vec![10.0],
                }
            } else {
                // All sensitivity — objective included — lives in the
                // non-dominant corner.
                SpecResult {
                    failure: None,
                    objective: 3.0 * x[0],
                    constraints: vec![x[1] - 20.0],
                }
            }
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            opt::evaluate_worst_case(self, x)
        }
    }

    #[test]
    fn sensitivity_sees_variables_masked_by_the_worst_case_fold() {
        let p = MaskedCornerVar;
        // Sanity: the folded view really is flat in both variables.
        let a = p.evaluate(&[0.5, 0.2]);
        let b = p.evaluate(&[0.1, 0.8]);
        assert_eq!(a, b);
        let rep = SensitivityReport::compute(&p, &[0.5, 0.5], 0.05);
        // Corner-resolved matrix: 2 corners × (1 objective + 1
        // constraint) rows.
        assert_eq!(rep.matrix().rows(), 4);
        let crit = rep.critical_variables(0.1);
        assert!(
            crit.contains(&1),
            "x1 only moves a non-dominant corner's constraint but must not be pruned: {crit:?}"
        );
        assert!(
            crit.contains(&0),
            "x0 only moves a non-dominant corner's *objective* but must not be pruned: {crit:?}"
        );
    }

    #[test]
    fn reduced_problem_forwards_the_corner_plane() {
        let p = CorneredInert;
        let red = ReducedProblem::new(&p, vec![0.5; 4], vec![0, 2]);
        assert_eq!(red.num_corners(), 2);
        assert_eq!(red.corner_name(1), "c1");
        let a = red.evaluate_corner(&[0.1, 0.9], 1);
        let b = p.evaluate_corner(&red.expand(&[0.1, 0.9]), 1);
        assert_eq!(a, b);
        // The reduced sign-off view is still the worst case.
        let m = red.evaluate(&[0.1, 0.9]);
        assert_eq!(m.constraints[0], 0.9 - 0.5 + 0.1);
    }
}
