//! Preallocated training state: forward caches, gradient buffers, GEMM
//! pack buffers, and scratch matrices, reused across every epoch of a
//! training loop.
//!
//! Every dense-layer product runs through `linalg`'s cache-blocked GEMM
//! engine with a **fused epilogue**:
//!
//! - forward: `acts[k+1] = act(acts[k]·Wᵀ + b)` is one GEMM whose output
//!   tiles receive the bias-add and activation in place — no pre-activation
//!   matrix is materialized and no second pass touches the output;
//! - backward: the delta propagation `δ_{k-1} = (δ_k·W) ⊙ act'(a)` fuses
//!   the activation-derivative product into the propagation GEMM's output
//!   tiles, with the derivative computed from the stored activation
//!   *outputs* (ReLU: `a > 0`; tanh: `1 − a²`);
//! - the `Activation` dispatch is monomorphized per variant, so the inner
//!   loops contain no per-element `match`.
//!
//! A [`TrainWorkspace`] owns all buffers, including the
//! [`linalg::GemmWorkspace`] pack panels, so one full forward + backward +
//! Adam step performs **zero heap allocations** once the buffers are warm.

use linalg::{
    gemm, gemm_prepacked_with, gemm_with, Epilogue, GemmOp, GemmWorkspace, Matrix, PackedB,
};

use crate::mlp::{ActFn, Activation, Gradients, Mlp, ReluAct, TanhAct};
use crate::Adam;

/// Reusable buffers for [`Mlp::forward_ws`] / [`Mlp::backward_ws`] and
/// [`crate::train_step_mse_ws`]. One workspace serves one network shape at
/// a time and adapts automatically when handed a different one.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use nn::{Activation, Adam, Mlp, TrainWorkspace};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, &mut rng);
/// let x = Matrix::from_fn(32, 1, |i, _| i as f64 / 32.0);
/// let y = x.map(|v| (2.0 * v).sin());
/// let mut adam = Adam::new(1e-2);
/// let mut ws = TrainWorkspace::new();
/// for _ in 0..800 {
///     nn::train_step_mse_ws(&mut net, &mut adam, &x, &y, &mut ws);
/// }
/// let pred = net.forward(&x);
/// assert!(nn::mse(&pred, &y) < 5e-3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrainWorkspace {
    /// `acts[k]` is the activation entering layer `k`; `acts[L]` is the
    /// network output. (Pre-activations are never stored: the backward
    /// pass derives `act'` from these outputs.)
    pub(crate) acts: Vec<Matrix>,
    /// Current backpropagated `∂L/∂z`.
    pub(crate) delta: Matrix,
    /// Double buffer for propagating `delta` through a layer.
    pub(crate) delta_tmp: Matrix,
    /// Parameter gradients, shaped like the network.
    pub(crate) grads: Gradients,
    /// Scratch for loss gradients (used by `train_step_mse_ws`).
    pub(crate) grad_out: Matrix,
    /// GEMM pack panels shared by every layer's products.
    pub(crate) gemm: GemmWorkspace,
}

impl TrainWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the per-layer buffers to match `net` (no-op when they already
    /// do).
    fn ensure(&mut self, net: &Mlp) {
        let layers = net.num_layers();
        self.acts.resize_with(layers + 1, || Matrix::zeros(0, 0));
        self.grads.dw.resize_with(layers, || Matrix::zeros(0, 0));
        self.grads.db.resize_with(layers, Vec::new);
    }

    /// The parameter gradients of the last [`Mlp::backward_ws`] call.
    pub fn gradients(&self) -> &Gradients {
        &self.grads
    }

    /// Mutable access (for gradient clipping before the optimizer step).
    pub fn gradients_mut(&mut self) -> &mut Gradients {
        &mut self.grads
    }

    /// The `∂L/∂input` batch of the last [`Mlp::backward_ws`] call.
    pub fn input_gradient(&self) -> &Matrix {
        &self.delta
    }

    /// The network output of the last [`Mlp::forward_ws`] call.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been recorded yet.
    pub fn output(&self) -> &Matrix {
        assert!(
            !self.acts.is_empty(),
            "no forward pass recorded in this workspace"
        );
        &self.acts[self.acts.len() - 1]
    }
}

/// Output-layer epilogue: adds the layer bias inside the GEMM output tile.
struct BiasEpilogue<'a> {
    bias: &'a [f64],
}

impl Epilogue for BiasEpilogue<'_> {
    #[inline]
    fn apply(&mut self, _row: usize, col0: usize, seg: &mut [f64]) {
        let bias = &self.bias[col0..col0 + seg.len()];
        for (v, &b) in seg.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Hidden-layer epilogue: bias-add and activation fused into the GEMM
/// output tile, monomorphized over the activation.
struct BiasActEpilogue<'a, A: ActFn> {
    bias: &'a [f64],
    _act: std::marker::PhantomData<A>,
}

impl<'a, A: ActFn> BiasActEpilogue<'a, A> {
    fn new(bias: &'a [f64]) -> Self {
        BiasActEpilogue {
            bias,
            _act: std::marker::PhantomData,
        }
    }
}

impl<A: ActFn> Epilogue for BiasActEpilogue<'_, A> {
    #[inline]
    fn apply(&mut self, _row: usize, col0: usize, seg: &mut [f64]) {
        let bias = &self.bias[col0..col0 + seg.len()];
        for (v, &b) in seg.iter_mut().zip(bias) {
            *v = A::apply(*v + b);
        }
    }
}

/// Backward-propagation epilogue: multiplies the freshly propagated delta
/// tile by the activation derivative, read from the stored activation
/// outputs of the same positions.
struct ActPrimeEpilogue<'a, A: ActFn> {
    act_out: &'a Matrix,
    _act: std::marker::PhantomData<A>,
}

impl<'a, A: ActFn> ActPrimeEpilogue<'a, A> {
    fn new(act_out: &'a Matrix) -> Self {
        ActPrimeEpilogue {
            act_out,
            _act: std::marker::PhantomData,
        }
    }
}

impl<A: ActFn> Epilogue for ActPrimeEpilogue<'_, A> {
    #[inline]
    fn apply(&mut self, row: usize, col0: usize, seg: &mut [f64]) {
        let a = &self.act_out.row(row)[col0..col0 + seg.len()];
        for (v, &av) in seg.iter_mut().zip(a) {
            *v *= A::deriv_from_output(av);
        }
    }
}

/// One layer product `x_in · Wᵀ` with the given fused epilogue, through
/// the pre-packed panel when the network is frozen.
#[inline]
fn layer_gemm<E: Epilogue>(
    x_in: &Matrix,
    w: &Matrix,
    packed: Option<&PackedB>,
    out: &mut Matrix,
    gemm_ws: &mut GemmWorkspace,
    epi: &mut E,
) {
    match packed {
        Some(p) => gemm_prepacked_with(GemmOp::NoTrans, 1.0, x_in, p, 0.0, out, gemm_ws, epi),
        None => gemm_with(
            GemmOp::NoTrans,
            GemmOp::Trans,
            1.0,
            x_in,
            w,
            0.0,
            out,
            gemm_ws,
            epi,
        ),
    }
}

/// One delta propagation `δ · W` with the given fused epilogue, through
/// the pre-packed panel when the network is frozen.
#[inline]
fn prop_gemm<E: Epilogue>(
    delta: &Matrix,
    w: &Matrix,
    packed: Option<&PackedB>,
    out: &mut Matrix,
    gemm_ws: &mut GemmWorkspace,
    epi: &mut E,
) {
    match packed {
        Some(p) => gemm_prepacked_with(GemmOp::NoTrans, 1.0, delta, p, 0.0, out, gemm_ws, epi),
        None => gemm_with(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            delta,
            w,
            0.0,
            out,
            gemm_ws,
            epi,
        ),
    }
}

impl Mlp {
    /// Forward pass on a batch using preallocated buffers; the output and
    /// the cache needed by [`Mlp::backward_ws`] land in `ws`. Each layer is
    /// a single fused GEMM (`x·Wᵀ` with bias + activation applied in the
    /// output tiles). Allocation free once `ws` is warm.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the input dimensionality.
    pub fn forward_ws<'w>(&self, x: &Matrix, ws: &'w mut TrainWorkspace) -> &'w Matrix {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        ws.ensure(self);
        let last = self.num_layers() - 1;
        ws.acts[0].copy_from(x);
        for k in 0..=last {
            let (w, b) = self.layer(k);
            let packed = self.packed_fwd(k);
            let (head, tail) = ws.acts.split_at_mut(k + 1);
            let x_in = &head[k];
            let out = &mut tail[0];
            if k < last {
                match self.activation() {
                    Activation::Relu => layer_gemm(
                        x_in,
                        w,
                        packed,
                        out,
                        &mut ws.gemm,
                        &mut BiasActEpilogue::<ReluAct>::new(b),
                    ),
                    Activation::Tanh => layer_gemm(
                        x_in,
                        w,
                        packed,
                        out,
                        &mut ws.gemm,
                        &mut BiasActEpilogue::<TanhAct>::new(b),
                    ),
                }
            } else {
                // Linear output layer: bias-add only.
                layer_gemm(
                    x_in,
                    w,
                    packed,
                    out,
                    &mut ws.gemm,
                    &mut BiasEpilogue { bias: b },
                );
            }
        }
        ws.output()
    }

    /// Reverse-mode pass over the state of the last [`Mlp::forward_ws`]
    /// call: fills `ws.gradients()` and `ws.input_gradient()` without
    /// allocating. The weight gradient (`δᵀ·x`) and delta propagation
    /// (`δ·W`, with the activation derivative fused into the output tiles)
    /// are each one GEMM per layer.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the cached batch.
    pub fn backward_ws(&self, ws: &mut TrainWorkspace, grad_out: &Matrix) {
        self.backward_ws_impl(ws, grad_out, true, true);
    }

    /// [`Mlp::backward_ws`] without the final propagation into the input
    /// batch: fills `ws.gradients()` only, skipping the first layer's
    /// `δ·W` GEMM entirely. The parameter-training fast path (plain MSE
    /// steps, actor updates) — `ws.input_gradient()` is *not* valid after
    /// this call.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the cached batch.
    pub fn backward_params_ws(&self, ws: &mut TrainWorkspace, grad_out: &Matrix) {
        self.backward_ws_impl(ws, grad_out, true, false);
    }

    /// [`Mlp::backward_ws`] without the parameter gradients: propagates the
    /// delta to `ws.input_gradient()` only, skipping every layer's `δᵀ·x`
    /// GEMM and bias sum. The frozen-network path (gradients *through* the
    /// DNN-Opt critic into the actor) — `ws.gradients()` is *not* valid
    /// after this call.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the cached batch.
    pub fn backward_input_ws(&self, ws: &mut TrainWorkspace, grad_out: &Matrix) {
        self.backward_ws_impl(ws, grad_out, false, true);
    }

    fn backward_ws_impl(
        &self,
        ws: &mut TrainWorkspace,
        grad_out: &Matrix,
        param_grads: bool,
        input_grad: bool,
    ) {
        let last = self.num_layers() - 1;
        assert_eq!(
            grad_out.cols(),
            self.output_dim(),
            "gradient width mismatch"
        );
        assert_eq!(
            grad_out.rows(),
            ws.acts[0].rows(),
            "gradient batch mismatch"
        );
        ws.delta.copy_from(grad_out);
        for k in (0..=last).rev() {
            if param_grads {
                // dW[k] = δᵀ·x_in without materializing the transpose.
                gemm(
                    GemmOp::Trans,
                    GemmOp::NoTrans,
                    1.0,
                    &ws.delta,
                    &ws.acts[k],
                    0.0,
                    &mut ws.grads.dw[k],
                    &mut ws.gemm,
                );
                // db[k] = column sums of δ, one row-major pass.
                let db = &mut ws.grads.db[k];
                db.clear();
                db.resize(ws.delta.cols(), 0.0);
                for i in 0..ws.delta.rows() {
                    for (s, &d) in db.iter_mut().zip(ws.delta.row(i)) {
                        *s += d;
                    }
                }
            }
            // Propagate to the layer input. For k > 0 the destination is a
            // hidden activation, so the propagation GEMM fuses the
            // activation-derivative product (δ ⊙ act'(acts[k])) into its
            // output tiles; for k == 0 it is the plain input gradient.
            let (w, _) = self.layer(k);
            let packed = self.packed_bwd(k);
            if k > 0 {
                match self.activation() {
                    Activation::Relu => prop_gemm(
                        &ws.delta,
                        w,
                        packed,
                        &mut ws.delta_tmp,
                        &mut ws.gemm,
                        &mut ActPrimeEpilogue::<ReluAct>::new(&ws.acts[k]),
                    ),
                    Activation::Tanh => prop_gemm(
                        &ws.delta,
                        w,
                        packed,
                        &mut ws.delta_tmp,
                        &mut ws.gemm,
                        &mut ActPrimeEpilogue::<TanhAct>::new(&ws.acts[k]),
                    ),
                }
            } else if input_grad {
                prop_gemm(
                    &ws.delta,
                    w,
                    packed,
                    &mut ws.delta_tmp,
                    &mut ws.gemm,
                    &mut linalg::NoEpilogue,
                );
            } else {
                // Parameter-only pass: the input gradient is never used,
                // so skip the first layer's propagation GEMM.
                break;
            }
            std::mem::swap(&mut ws.delta, &mut ws.delta_tmp);
        }
    }
}

/// One full-batch MSE gradient step using preallocated buffers: forward,
/// backward and Adam update with zero per-step allocations. Returns the
/// pre-step loss. The workspace-free equivalent is
/// [`crate::train_step_mse`].
pub fn train_step_mse_ws(
    net: &mut Mlp,
    adam: &mut Adam,
    x: &Matrix,
    y: &Matrix,
    ws: &mut TrainWorkspace,
) -> f64 {
    telemetry::record(telemetry::Metric::TrainSteps, 1);
    let mut grad_out = std::mem::take(&mut ws.grad_out);
    net.forward_ws(x, ws);
    let pred = ws.output();
    assert_eq!(
        (pred.rows(), pred.cols()),
        (y.rows(), y.cols()),
        "mse: shape mismatch"
    );
    // Loss and its gradient 2(pred − target)/n in one fused pass over the
    // predictions, written into the reusable buffer. Identical summation
    // order to `crate::mse`.
    let n = (pred.rows() * pred.cols()) as f64;
    grad_out.reshape_zeroed(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for ((g, &p), &t) in grad_out
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(y.as_slice())
    {
        let e = p - t;
        loss += e * e;
        *g = 2.0 * e / n;
    }
    loss /= n;
    // Plain training never reads the input gradient: parameter-only pass.
    net.backward_params_ws(ws, &grad_out);
    ws.grad_out = grad_out;
    adam.step(net, &ws.grads);
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;
    use rand::{rngs::StdRng, SeedableRng};

    fn small_net() -> Mlp {
        let mut rng = StdRng::seed_from_u64(3);
        Mlp::new(&[3, 5, 4, 2], Activation::Tanh, &mut rng)
    }

    #[test]
    fn forward_ws_matches_forward() {
        let net = small_net();
        let x = Matrix::from_fn(6, 3, |i, j| (i as f64 - j as f64) * 0.2);
        let y = net.forward(&x);
        let mut ws = TrainWorkspace::new();
        let y_ws = net.forward_ws(&x, &mut ws).clone();
        assert_eq!(y, y_ws);
        // Reuse with a different batch size.
        let x2 = Matrix::from_fn(2, 3, |i, j| (i * j) as f64 * 0.1);
        let y2 = net.forward(&x2);
        assert_eq!(&y2, net.forward_ws(&x2, &mut ws));
    }

    #[test]
    fn backward_ws_matches_backward() {
        let net = small_net();
        let x = Matrix::from_fn(4, 3, |i, j| ((i + 2 * j) as f64).sin());
        let grad_out = Matrix::from_fn(4, 2, |i, j| (i as f64 + 1.0) * (j as f64 - 0.5));
        let (_, cache) = net.forward_cached(&x);
        let (grads, dx) = net.backward(&cache, &grad_out);
        let mut ws = TrainWorkspace::new();
        net.forward_ws(&x, &mut ws);
        net.backward_ws(&mut ws, &grad_out);
        for k in 0..net.num_layers() {
            assert_eq!(grads.dw[k], ws.gradients().dw[k], "dW[{k}]");
            assert_eq!(grads.db[k], ws.gradients().db[k], "db[{k}]");
        }
        assert_eq!(dx, *ws.input_gradient());
    }

    #[test]
    fn train_step_ws_matches_allocating_path() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net_a = Mlp::new(&[2, 8, 1], Activation::Relu, &mut rng);
        let mut net_b = net_a.clone();
        let x = Matrix::from_fn(10, 2, |i, j| (i as f64 * 0.3 + j as f64).cos());
        let y = Matrix::from_fn(10, 1, |i, _| (i as f64 * 0.1).sin());
        let mut adam_a = Adam::new(1e-2);
        let mut adam_b = Adam::new(1e-2);
        let mut ws = TrainWorkspace::new();
        for _ in 0..25 {
            let la = crate::train_step_mse(&mut net_a, &mut adam_a, &x, &y);
            let lb = train_step_mse_ws(&mut net_b, &mut adam_b, &x, &y, &mut ws);
            assert!((la - lb).abs() < 1e-12, "losses diverged: {la} vs {lb}");
        }
        assert_eq!(net_a.forward(&x), net_b.forward(&x));
    }

    /// Freezing pre-packs the weight panels; forward and backward through
    /// the packed panels must match the on-the-fly blocked path bit for
    /// bit, and any parameter mutation must silently discard the packs.
    #[test]
    fn frozen_packed_panels_match_on_the_fly_path() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut net = Mlp::new(&[9, 7, 3], Activation::Relu, &mut rng);
        // Batch large enough that every layer product exceeds the naive
        // cutoff, so the unfrozen path is blocked too (the packed path is
        // always blocked; bit equality only holds kernel-to-kernel).
        let x = Matrix::from_fn(256, 9, |i, j| ((i * 5 + j) as f64 * 0.07).cos());
        let grad_out = Matrix::from_fn(256, 3, |i, j| (i as f64 * 0.01) - j as f64);
        let mut ws_plain = TrainWorkspace::new();
        net.forward_ws(&x, &mut ws_plain);
        net.backward_ws(&mut ws_plain, &grad_out);
        let plain_out = ws_plain.output().clone();

        net.freeze();
        assert!(net.is_frozen());
        let mut ws_frozen = TrainWorkspace::new();
        net.forward_ws(&x, &mut ws_frozen);
        net.backward_ws(&mut ws_frozen, &grad_out);
        assert_eq!(plain_out, *ws_frozen.output());
        for k in 0..net.num_layers() {
            assert_eq!(ws_plain.gradients().dw[k], ws_frozen.gradients().dw[k]);
        }
        assert_eq!(ws_plain.input_gradient(), ws_frozen.input_gradient());

        // A parameter mutation thaws the network.
        let mut adam = Adam::new(1e-3);
        let y = Matrix::from_fn(256, 3, |i, _| (i as f64 * 0.02).sin());
        train_step_mse_ws(&mut net, &mut adam, &x, &y, &mut ws_frozen);
        assert!(!net.is_frozen());
    }

    /// The fused bias/activation epilogues must agree bit-for-bit with the
    /// separate-pass formulation (plain GEMM, then explicit bias-add and
    /// activation loops) — the epilogue only relocates the same arithmetic
    /// into the output tiles.
    #[test]
    fn fused_epilogues_match_separate_passes() {
        for act in [Activation::Tanh, Activation::Relu] {
            let mut rng = StdRng::seed_from_u64(17);
            // Batch large enough to push the layer GEMMs onto the blocked
            // kernel (64·7·9 > cutoff).
            let net = Mlp::new(&[9, 7, 2], act, &mut rng);
            let x = Matrix::from_fn(64, 9, |i, j| ((i * 3 + j) as f64 * 0.11).sin());
            let mut ws = TrainWorkspace::new();
            net.forward_ws(&x, &mut ws);

            // Separate-pass hidden layer: GEMM, then bias, then activation.
            let (w0, b0) = net.layer(0);
            let mut z = Matrix::default();
            let mut gw = linalg::GemmWorkspace::new();
            gemm(
                GemmOp::NoTrans,
                GemmOp::Trans,
                1.0,
                &x,
                w0,
                0.0,
                &mut z,
                &mut gw,
            );
            for i in 0..z.rows() {
                for (v, &b) in z.row_mut(i).iter_mut().zip(b0) {
                    *v += b;
                }
            }
            z.map_inplace(|v| match act {
                Activation::Relu => v.max(0.0),
                Activation::Tanh => v.tanh(),
            });
            assert_eq!(z, ws.acts[1], "fused hidden layer diverged ({act:?})");

            // Separate-pass backward: propagate then multiply by act'.
            let grad_out = Matrix::from_fn(64, 2, |i, j| (i as f64 - 30.0) * (j as f64 + 0.5));
            net.backward_ws(&mut ws, &grad_out);
            let (w1, _) = net.layer(1);
            let mut prop = Matrix::default();
            gemm(
                GemmOp::NoTrans,
                GemmOp::NoTrans,
                1.0,
                &grad_out,
                w1,
                0.0,
                &mut prop,
                &mut gw,
            );
            let a1 = &ws.acts[1];
            let expect_delta = Matrix::from_fn(prop.rows(), prop.cols(), |i, j| {
                let d = match act {
                    Activation::Relu => {
                        if a1[(i, j)] > 0.0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    Activation::Tanh => 1.0 - a1[(i, j)] * a1[(i, j)],
                };
                prop[(i, j)] * d
            });
            // dW[0] = (δ ⊙ act')ᵀ · x — recompute from the separate-pass δ.
            let mut expect_dw0 = Matrix::default();
            gemm(
                GemmOp::Trans,
                GemmOp::NoTrans,
                1.0,
                &expect_delta,
                &x,
                0.0,
                &mut expect_dw0,
                &mut gw,
            );
            assert_eq!(
                expect_dw0,
                ws.gradients().dw[0],
                "fused backward diverged ({act:?})"
            );
        }
    }
}
