//! Differential Evolution (the paper's model-free baseline).

use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::fom::Fom;
use crate::history::{Evaluator, RunResult, StopPolicy};
use crate::problem::SizingProblem;
use crate::sampling::latin_hypercube;
use crate::Optimizer;

/// DE/rand/1/bin with FoM-based selection (constraint handling comes from
/// Eq. 4's violation terms, matching how the paper compares methods on the
/// same FoM scale).
///
/// Uses the *synchronous* (generational) update: every generation breeds a
/// full trial population from the current population snapshot, evaluates
/// all trials as one batch — in parallel across worker threads via
/// [`Evaluator::evaluate_batch`] — and then applies one-to-one selection.
/// Each trial is bred with its own RNG seeded from `(seed, generation,
/// index)` ([`crate::parallel::candidate_seed`]), so runs are bit-identical
/// regardless of thread count.
///
/// # Example
///
/// ```
/// use opt::{DifferentialEvolution, Fom, Optimizer, StopPolicy};
/// # use opt::{SizingProblem, SpecResult};
/// # struct P;
/// # impl SizingProblem for P {
/// #     fn dim(&self) -> usize { 2 }
/// #     fn bounds(&self) -> (Vec<f64>, Vec<f64>) { (vec![0.0; 2], vec![1.0; 2]) }
/// #     fn num_constraints(&self) -> usize { 0 }
/// #     fn evaluate(&self, x: &[f64]) -> SpecResult {
/// #         SpecResult { failure: None, objective: x.iter().map(|v| v * v).sum(), constraints: vec![] }
/// #     }
/// # }
/// let de = DifferentialEvolution::default();
/// let fom = Fom::uniform(1.0, 0);
/// let run = de.run(&P, &fom, 300, StopPolicy::Exhaust, 42);
/// assert!(run.history.best().unwrap().fom < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct DifferentialEvolution {
    /// Population size; 0 means `max(20, 4·d)` chosen automatically.
    pub population: usize,
    /// Differential weight F.
    pub f: f64,
    /// Crossover rate CR.
    pub cr: f64,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        DifferentialEvolution {
            population: 0,
            f: 0.6,
            cr: 0.4,
        }
    }
}

impl DifferentialEvolution {
    fn pop_size(&self, dim: usize) -> usize {
        if self.population > 0 {
            self.population
        } else {
            (4 * dim).max(20)
        }
    }
}

impl Optimizer for DifferentialEvolution {
    fn name(&self) -> &'static str {
        "DE"
    }

    fn run(
        &self,
        problem: &dyn SizingProblem,
        fom: &Fom,
        budget: usize,
        stop: StopPolicy,
        seed: u64,
    ) -> RunResult {
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let (lb, ub) = problem.bounds();
        let d = problem.dim();
        let np = self.pop_size(d).min(budget.max(1));
        let mut ev = Evaluator::new(problem, fom, budget);

        // Initial population, evaluated as one parallel batch.
        let mut pop = latin_hypercube(&mut rng, &lb, &ub, np);
        let evals = ev.evaluate_batch(&pop);
        if stop == StopPolicy::FirstFeasible && evals.iter().any(|e| e.feasible) {
            return finish(self.name(), ev, t0);
        }
        // Budget smaller than the population: return what we have.
        if evals.len() < np {
            return finish(self.name(), ev, t0);
        }
        let mut fit: Vec<f64> = evals.iter().map(|e| e.fom).collect();

        let mut generation: u64 = 0;
        while !ev.exhausted() {
            generation += 1;
            // Breed a full trial generation from the current population
            // snapshot. Each trial uses its own deterministic RNG, so the
            // generation is independent of evaluation order.
            let trials: Vec<Vec<f64>> = (0..np)
                .map(|i| {
                    let mut crng = StdRng::seed_from_u64(crate::parallel::candidate_seed(
                        seed, generation, i as u64,
                    ));
                    // Three distinct donors, all different from i.
                    let mut pick = || loop {
                        let k = crng.gen_range(0..np);
                        if k != i {
                            return k;
                        }
                    };
                    let (r1, r2, r3) = {
                        let a = pick();
                        let b = loop {
                            let k = pick();
                            if k != a {
                                break k;
                            }
                        };
                        let c = loop {
                            let k = pick();
                            if k != a && k != b {
                                break k;
                            }
                        };
                        (a, b, c)
                    };
                    // Mutation + binomial crossover.
                    let jrand = crng.gen_range(0..d);
                    let mut trial = pop[i].clone();
                    for j in 0..d {
                        if j == jrand || crng.gen::<f64>() < self.cr {
                            let v = pop[r1][j] + self.f * (pop[r2][j] - pop[r3][j]);
                            trial[j] = v.clamp(lb[j], ub[j]);
                        }
                    }
                    trial
                })
                .collect();
            // Parallel batch evaluation, then one-to-one selection.
            let evals = ev.evaluate_batch(&trials);
            let mut saw_feasible = false;
            for (i, e) in evals.iter().enumerate() {
                if e.fom <= fit[i] {
                    pop[i].copy_from_slice(&trials[i]);
                    fit[i] = e.fom;
                }
                saw_feasible |= e.feasible;
            }
            if stop == StopPolicy::FirstFeasible && saw_feasible {
                break;
            }
        }
        finish(self.name(), ev, t0)
    }
}

pub(crate) fn finish(name: &str, ev: Evaluator<'_>, t0: Instant) -> RunResult {
    finish_with_model_time(name, ev, t0, Duration::ZERO)
}

pub(crate) fn finish_with_model_time(
    name: &str,
    ev: Evaluator<'_>,
    t0: Instant,
    model_time: Duration,
) -> RunResult {
    let (history, sim_time) = ev.into_parts();
    RunResult {
        optimizer: name.to_string(),
        history,
        model_time,
        sim_time,
        total_time: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_problems::{NarrowBand, Sphere};

    #[test]
    fn solves_constrained_sphere() {
        let p = Sphere { d: 5 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let de = DifferentialEvolution::default();
        let run = de.run(&p, &fom, 2000, StopPolicy::Exhaust, 1);
        let best = run.history.best_feasible().expect("should find feasible");
        assert!(
            best.spec.objective < 0.05,
            "objective {}",
            best.spec.objective
        );
        assert_eq!(run.history.len(), 2000);
    }

    #[test]
    fn first_feasible_stops_early() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let de = DifferentialEvolution::default();
        let run = de.run(&p, &fom, 5000, StopPolicy::FirstFeasible, 3);
        assert!(run.history.len() < 5000);
        assert!(run.sims_to_feasible().is_some());
    }

    #[test]
    fn finds_narrow_band_eventually() {
        let p = NarrowBand { d: 2 };
        let fom = Fom::uniform(0.1, p.num_constraints());
        let de = DifferentialEvolution::default();
        let run = de.run(&p, &fom, 3000, StopPolicy::FirstFeasible, 7);
        assert!(
            run.sims_to_feasible().is_some(),
            "DE should locate the 0.05-wide band in 3000 sims"
        );
    }

    #[test]
    fn respects_budget_exactly() {
        let p = Sphere { d: 4 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let de = DifferentialEvolution::default();
        let run = de.run(&p, &fom, 137, StopPolicy::Exhaust, 5);
        assert_eq!(run.history.len(), 137);
    }

    #[test]
    fn tiny_budget_does_not_panic() {
        let p = Sphere { d: 4 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let de = DifferentialEvolution::default();
        let run = de.run(&p, &fom, 3, StopPolicy::Exhaust, 5);
        assert_eq!(run.history.len(), 3);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let de = DifferentialEvolution::default();
        let a = de.run(&p, &fom, 200, StopPolicy::Exhaust, 11);
        let b = de.run(&p, &fom, 200, StopPolicy::Exhaust, 11);
        assert_eq!(a.history.best_trace(), b.history.best_trace());
    }

    #[test]
    fn population_stays_in_bounds() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let de = DifferentialEvolution {
            population: 10,
            f: 0.9,
            cr: 1.0,
        };
        let run = de.run(&p, &fom, 300, StopPolicy::Exhaust, 2);
        for e in run.history.entries() {
            for &v in &e.x {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
