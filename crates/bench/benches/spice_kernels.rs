//! Criterion micro-benchmarks of the simulator substrate: the per-analysis
//! costs that make one "SPICE simulation" expensive, plus the
//! allocating-vs-workspace comparison for the DC Newton-solve kernel that
//! motivated the zero-allocation refactor (`BENCH_baseline.json` records
//! the reference numbers).

use bench::{assemble_linear_small_signal, build_mos_ladder, build_rc_ladder};
use circuits::{FoldedCascodeOta, StrongArmLatch};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use linalg::{
    ComplexLu, ComplexLuWorkspace, CscComplexMatrix, CscMatrix, Lu, LuWorkspace, SparseComplexLu,
    SparseLu, C64,
};
use opt::SizingProblem;
use spice::stamp::{stamp_resistive_system, RealStamper, SourceEval};
use spice::SimOptions;

/// Verbatim copy of the seed's LU factor + solve (index-op elimination, a
/// fresh matrix clone and solution vector per call). The live `Lu::factor`
/// now shares the optimized workspace kernel, so the historical allocating
/// baseline is preserved here for the before/after comparison that
/// `BENCH_baseline.json` records.
mod seed_baseline {
    use linalg::Matrix;

    pub struct SeedLu {
        lu: Matrix,
        perm: Vec<usize>,
    }

    pub fn factor(a: &Matrix) -> SeedLu {
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            assert!(max > 1e-300, "singular");
            if p != k {
                perm.swap(p, k);
                for j in 0..n {
                    let t = lu[(p, j)];
                    lu[(p, j)] = lu[(k, j)];
                    lu[(k, j)] = t;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= m * u;
                    }
                }
            }
        }
        SeedLu { lu, perm }
    }

    impl SeedLu {
        pub fn solve(&self, b: &[f64]) -> Vec<f64> {
            let n = self.lu.rows();
            let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
            for i in 1..n {
                let mut s = x[i];
                for j in 0..i {
                    s -= self.lu[(i, j)] * x[j];
                }
                x[i] = s;
            }
            for i in (0..n).rev() {
                let mut s = x[i];
                for j in (i + 1)..n {
                    s -= self.lu[(i, j)] * x[j];
                }
                x[i] = s / self.lu[(i, i)];
            }
            x
        }
    }
}

/// The DC Newton-solve kernel in isolation: factor + solve of the stamped
/// MNA system, comparing the seed's allocating path with the workspace
/// path the simulator now uses (acceptance target: ≥2×). Run on the
/// 60-stage RC interconnect ladder (n = 62) and the 30-stage MOS ladder
/// (n = 32).
fn bench_newton_kernel(c: &mut Criterion) {
    for (label_seed, label_ws, label_sparse, ckt, x_guess) in [
        (
            "newton_dc_kernel_alloc_n62",
            "newton_dc_kernel_workspace_n62",
            "newton_dc_kernel_sparse_n62",
            build_rc_ladder(60),
            0.0,
        ),
        (
            "newton_dc_kernel_alloc_n32",
            "newton_dc_kernel_workspace_n32",
            "newton_dc_kernel_sparse_n32",
            build_mos_ladder(30),
            0.4,
        ),
    ] {
        let n = ckt.num_unknowns();
        let mut st = RealStamper::new(&ckt);
        let x0 = vec![x_guess; n];
        st.clear();
        st.load_gmin(1e-12);
        stamp_resistive_system(&ckt, &x0, SourceEval::Dc { scale: 1.0 }, &mut st);

        // All three kernels must agree before their times mean anything.
        {
            let expect = seed_baseline::factor(&st.a).solve(&st.z);
            let mut ws = LuWorkspace::new(n);
            Lu::factor_into(&st.a, &mut ws).unwrap();
            let mut x = Vec::new();
            ws.solve_into(&st.z, &mut x).unwrap();
            let csc = CscMatrix::from_dense(&st.a);
            let mut slu = SparseLu::new();
            slu.factor(&csc).unwrap();
            slu.refactor_into(&csc).unwrap();
            let mut xs = Vec::new();
            slu.solve_into(&st.z, &mut xs).unwrap();
            for ((a, b), s) in expect.iter().zip(&x).zip(&xs) {
                assert!((a - b).abs() <= 1e-10 * a.abs().max(1.0), "kernel mismatch");
                assert!((a - s).abs() <= 1e-10 * a.abs().max(1.0), "sparse mismatch");
            }
        }

        c.bench_function(label_seed, |b| {
            b.iter(|| {
                let lu = seed_baseline::factor(black_box(&st.a));
                black_box(lu.solve(&st.z))
            })
        });

        c.bench_function(label_ws, |b| {
            let mut ws = LuWorkspace::new(n);
            let mut x = vec![0.0; n];
            b.iter(|| {
                Lu::factor_into(black_box(&st.a), &mut ws).unwrap();
                ws.solve_into(&st.z, &mut x).unwrap();
                black_box(x[0])
            })
        });

        // Steady-state sparse Newton iteration: the pattern and pivot
        // sequence are recorded (one `factor` in setup, as the engine does
        // once per solve session); each iteration then pays only the
        // scan-free numeric refactorization plus the triangular solves —
        // the apples-to-apples comparison with the dense `_workspace_`
        // kernel above, which also re-factors the same values per
        // iteration.
        c.bench_function(label_sparse, |b| {
            let csc = CscMatrix::from_dense(&st.a);
            let mut slu = SparseLu::new();
            slu.factor(&csc).unwrap();
            let mut x = Vec::new();
            b.iter(|| {
                slu.refactor_into(black_box(&csc)).unwrap();
                slu.solve_into(&st.z, &mut x).unwrap();
                black_box(x[0])
            })
        });
    }

    // The same comparison over a *complete* NR iteration (assembly
    // included), exactly as the two engine generations execute it —
    // including the storage-donating `factor_in_place` the simulator now
    // uses, which the isolated kernel above cannot express.
    let ckt = build_mos_ladder(30);
    let n = ckt.num_unknowns();
    let x0 = vec![0.4; n];
    c.bench_function("newton_dc_iteration_alloc_n32", |b| {
        let mut st = RealStamper::new(&ckt);
        b.iter(|| {
            st.clear();
            st.load_gmin(1e-12);
            black_box(spice::stamp::stamp_resistive(
                &ckt,
                &x0,
                SourceEval::Dc { scale: 1.0 },
                &mut st,
            ));
            let lu = seed_baseline::factor(&st.a);
            black_box(lu.solve(&st.z))
        })
    });

    c.bench_function("newton_dc_iteration_workspace_n32", |b| {
        let mut st = RealStamper::new(&ckt);
        let mut ws = LuWorkspace::new(n);
        let mut x = vec![0.0; n];
        b.iter(|| {
            st.clear();
            st.load_gmin(1e-12);
            stamp_resistive_system(&ckt, &x0, SourceEval::Dc { scale: 1.0 }, &mut st);
            Lu::factor_in_place(&mut st.a, &mut ws).unwrap();
            ws.solve_into(&st.z, &mut x).unwrap();
            black_box(x[0])
        })
    });
}

/// The AC-sweep kernel in isolation: factor + solve of the small-signal
/// system `(G + jωC)·x = z` at all 26 points of a log sweep on the 60-stage
/// RC interconnect ladder (n = 62), comparing the dense per-point path
/// (workspace complex LU — already clone-free) with the sparse
/// pattern-shared path the AC engine now auto-selects: one pivoting
/// factorization at the first point of the sweep, then a scan-free
/// refactorization per point (acceptance target: ≥3×). Assembly is
/// excluded from both loops, exactly like the DC Newton kernels above.
fn bench_ac_sweep_kernel(c: &mut Criterion) {
    let ckt = build_rc_ladder(60);
    let n = ckt.num_unknowns();
    let opts = SimOptions::default();
    let freqs = spice::log_freqs(1e3, 1e8, 5); // 26 points
    assert!(freqs.len() >= 20, "sweep must cover ≥20 frequency points");
    let systems: Vec<(Vec<Vec<C64>>, Vec<C64>)> = freqs
        .iter()
        .map(|&f| {
            let st = assemble_linear_small_signal(&ckt, 2.0 * std::f64::consts::PI * f, opts.gmin);
            (st.a, st.z)
        })
        .collect();
    let cscs: Vec<CscComplexMatrix> = systems
        .iter()
        .map(|(a, _)| CscComplexMatrix::from_dense_rows(a))
        .collect();

    // All kernels (and the full engine) must agree before their times mean
    // anything.
    {
        let op = spice::op(&ckt, &opts).unwrap();
        let sweep = spice::ac(&ckt, &opts, &op, &freqs).unwrap();
        let out = ckt.find_node("n59").unwrap();
        let mut ws = ComplexLuWorkspace::new(n);
        let mut slu = SparseComplexLu::new();
        slu.factor(&cscs[0]).unwrap();
        let (mut xd, mut xs) = (Vec::new(), Vec::new());
        for (fi, ((a, z), csc)) in systems.iter().zip(&cscs).enumerate() {
            ComplexLu::factor_into(a, &mut ws).unwrap();
            ws.solve_into(z, &mut xd).unwrap();
            slu.refactor_into(csc).unwrap();
            slu.solve_into(z, &mut xs).unwrap();
            for (d, s) in xd.iter().zip(&xs) {
                assert!(
                    (*d - *s).abs() <= 1e-10 * d.abs().max(1.0),
                    "kernel mismatch"
                );
            }
            let engine = sweep.voltage(fi, out);
            let kernel = xd[out - 1];
            assert!((engine - kernel).abs() <= 1e-10, "engine mismatch");
        }
    }

    c.bench_function("ac_sweep_kernel_dense_n62", |b| {
        let mut ws = ComplexLuWorkspace::new(n);
        let mut x = Vec::new();
        b.iter(|| {
            for (a, z) in &systems {
                ComplexLu::factor_into(black_box(a), &mut ws).unwrap();
                ws.solve_into(z, &mut x).unwrap();
            }
            black_box(x[0])
        })
    });

    c.bench_function("ac_sweep_kernel_sparse_n62", |b| {
        let mut slu = SparseComplexLu::new();
        slu.factor(&cscs[0]).unwrap();
        let mut x = Vec::new();
        b.iter(|| {
            // Engine rhythm: the first point of each sweep re-derives the
            // pivot sequence; every later point replays it scan-free.
            for (i, (csc, (_, z))) in cscs.iter().zip(&systems).enumerate() {
                if i == 0 {
                    slu.factor(black_box(csc)).unwrap();
                } else {
                    slu.refactor_into(black_box(csc)).unwrap();
                }
                slu.solve_into(z, &mut x).unwrap();
            }
            black_box(x[0])
        })
    });
}

fn bench_spice(c: &mut Criterion) {
    let opts = SimOptions::default();

    c.bench_function("dc_op_mos_ladder_30", |b| {
        let ckt = build_mos_ladder(30);
        b.iter(|| spice::op(&ckt, &opts).unwrap())
    });

    c.bench_function("dc_op_rc_ladder_30", |b| {
        let ckt = build_rc_ladder(30);
        b.iter(|| spice::op(&ckt, &opts).unwrap())
    });

    c.bench_function("ac_sweep_rc_ladder_30_x25", |b| {
        let ckt = build_rc_ladder(30);
        let op = spice::op(&ckt, &opts).unwrap();
        let freqs = spice::log_freqs(1e3, 1e8, 5);
        b.iter(|| spice::ac(&ckt, &opts, &op, &freqs).unwrap())
    });

    c.bench_function("ota_full_evaluation", |b| {
        let ota = FoldedCascodeOta::new();
        let x = ota.nominal();
        b.iter(|| ota.evaluate(&x))
    });

    c.bench_function("latch_full_evaluation", |b| {
        let latch = StrongArmLatch::new();
        let x = latch.nominal();
        b.iter(|| latch.evaluate(&x))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_newton_kernel, bench_ac_sweep_kernel, bench_spice
}
criterion_main!(benches);
