//! Technology parameter sets and the PVT corner plane.
//!
//! The paper's building blocks use a 180 nm CMOS process and its industrial
//! circuits "a very advanced technology node". Both PDKs are proprietary, so
//! this module provides generic Level-1+ parameter sets with representative
//! magnitudes: a 180nm-class card (1.8 V) and a FinFET-era-class card
//! (0.75 V, higher drive, stronger channel-length modulation). These are the
//! documented SPICE/PDK substitutions from DESIGN.md — absolute performance
//! numbers differ from silicon, but the optimization landscape (headroom,
//! gain/speed/power/noise trade-offs) is preserved.
//!
//! On top of the nominal cards sits the **PVT scenario plane**: a
//! [`Corner`] combines a five-letter [`ProcessCorner`] (TT/FF/SS/SF/FS via
//! threshold/mobility derating), a supply scale, and an ambient
//! temperature. [`Technology::at_corner`] derates the model cards (the
//! temperature part flows through [`MosModel::at_temperature`], the same
//! Kelvin value that [`Corner::options`] writes into
//! [`SimOptions::temp`] for the noise analyses), and [`CornerSet`] names
//! the standard sign-off sets the testbenches evaluate across.

use spice::{MosModel, MosPolarity, SimOptions, T_NOM};

/// A process card: device models plus the nominal supply.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Display name.
    pub name: &'static str,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
    /// Nominal supply voltage \[V\].
    pub vdd: f64,
    /// Minimum drawn channel length \[m\].
    pub l_min: f64,
}

/// Per-flavor device speed at a process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceSpeed {
    /// Slow silicon: higher threshold, lower mobility.
    Slow,
    /// Typical silicon: the nominal card, untouched.
    Typical,
    /// Fast silicon: lower threshold, higher mobility.
    Fast,
}

impl DeviceSpeed {
    /// Multiplier on the threshold magnitude `vth0`.
    fn vth_scale(self) -> f64 {
        match self {
            DeviceSpeed::Slow => 1.08,
            DeviceSpeed::Typical => 1.0,
            DeviceSpeed::Fast => 0.92,
        }
    }

    /// Multiplier on the transconductance parameter `kp`.
    fn kp_scale(self) -> f64 {
        match self {
            DeviceSpeed::Slow => 0.85,
            DeviceSpeed::Typical => 1.0,
            DeviceSpeed::Fast => 1.15,
        }
    }

    /// Derates one model card (identity for [`DeviceSpeed::Typical`], so
    /// the TT corner keeps the nominal card bit-identical).
    fn derate(self, card: &MosModel) -> MosModel {
        if self == DeviceSpeed::Typical {
            return card.clone();
        }
        let mut out = card.clone();
        out.vth0 = card.vth0 * self.vth_scale();
        out.kp = card.kp * self.kp_scale();
        out
    }
}

/// The five standard process corners; first letter is the NMOS flavor,
/// second the PMOS flavor (S = slow, T = typical, F = fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessCorner {
    /// Typical/typical — the nominal silicon.
    TT,
    /// Fast/fast.
    FF,
    /// Slow/slow.
    SS,
    /// Slow NMOS / fast PMOS.
    SF,
    /// Fast NMOS / slow PMOS.
    FS,
}

impl ProcessCorner {
    /// NMOS flavor at this corner.
    pub fn nmos_speed(self) -> DeviceSpeed {
        match self {
            ProcessCorner::TT => DeviceSpeed::Typical,
            ProcessCorner::FF | ProcessCorner::FS => DeviceSpeed::Fast,
            ProcessCorner::SS | ProcessCorner::SF => DeviceSpeed::Slow,
        }
    }

    /// PMOS flavor at this corner.
    pub fn pmos_speed(self) -> DeviceSpeed {
        match self {
            ProcessCorner::TT => DeviceSpeed::Typical,
            ProcessCorner::FF | ProcessCorner::SF => DeviceSpeed::Fast,
            ProcessCorner::SS | ProcessCorner::FS => DeviceSpeed::Slow,
        }
    }

    /// Lower-case two-letter label (`"tt"`, `"ff"`, …).
    pub fn label(self) -> &'static str {
        match self {
            ProcessCorner::TT => "tt",
            ProcessCorner::FF => "ff",
            ProcessCorner::SS => "ss",
            ProcessCorner::SF => "sf",
            ProcessCorner::FS => "fs",
        }
    }
}

/// One PVT scenario point: process corner, supply scale, temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Process corner (threshold/mobility derating of both cards).
    pub process: ProcessCorner,
    /// Multiplier on every supply rail (1.0 = nominal).
    pub vdd_scale: f64,
    /// Ambient temperature \[K\].
    pub temp: f64,
}

impl Corner {
    /// Creates a corner.
    pub fn new(process: ProcessCorner, vdd_scale: f64, temp: f64) -> Self {
        Corner {
            process,
            vdd_scale,
            temp,
        }
    }

    /// The nominal corner: TT silicon, nominal supply, `T_NOM` (300 K).
    pub fn nominal() -> Self {
        Corner::new(ProcessCorner::TT, 1.0, T_NOM)
    }

    /// True when every derating is the identity — evaluation at such a
    /// corner is bit-identical to the legacy nominal path.
    pub fn is_nominal(&self) -> bool {
        self.process == ProcessCorner::TT && self.vdd_scale == 1.0 && self.temp == T_NOM
    }

    /// Human-readable label, e.g. `"ss_v0.950_398.1K"`. Three supply and
    /// one temperature decimals keep labels unique for fine-grained
    /// user-built grids (per-corner reporting keys on them).
    pub fn label(&self) -> String {
        format!(
            "{}_v{:.3}_{:.1}K",
            self.process.label(),
            self.vdd_scale,
            self.temp
        )
    }

    /// Simulator options for this corner: a copy of `base` with the
    /// corner's temperature — the same Kelvin value the model-card
    /// derating uses — written into [`SimOptions::temp`], so the noise
    /// analyses see the corner ambient too.
    pub fn options(&self, base: &SimOptions) -> SimOptions {
        let mut opts = base.clone();
        opts.temp = self.temp;
        opts
    }
}

/// A named set of PVT corners — the scenario plane a testbench evaluates
/// each candidate across.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerSet {
    /// Display name of the set.
    pub name: &'static str,
    /// The corners, in evaluation order. Index 0 is the reference corner
    /// (nominal in every standard set).
    pub corners: Vec<Corner>,
}

/// Cold military/industrial extreme (−40 °C) \[K\].
pub const TEMP_COLD: f64 = 233.15;
/// Hot sign-off extreme (+125 °C) \[K\].
pub const TEMP_HOT: f64 = 398.15;

impl CornerSet {
    /// The single nominal corner — the legacy evaluation plane.
    pub fn nominal() -> Self {
        CornerSet {
            name: "nominal",
            corners: vec![Corner::nominal()],
        }
    }

    /// A one-corner set holding `corner` — the per-plane bookkeeping set
    /// each extra evaluation plane of a corner-capable testbench carries.
    pub fn single(corner: Corner) -> Self {
        CornerSet {
            name: "plane",
            corners: vec![corner],
        }
    }

    /// The standard 5-corner sign-off set: nominal, the two worst-case
    /// full-parallel corners (FF cold at +5% supply, SS hot at −5%), and
    /// the two mixed corners at nominal supply (SF hot, FS cold).
    pub fn pvt5() -> Self {
        CornerSet {
            name: "pvt5",
            corners: vec![
                Corner::nominal(),
                Corner::new(ProcessCorner::FF, 1.05, TEMP_COLD),
                Corner::new(ProcessCorner::SS, 0.95, TEMP_HOT),
                Corner::new(ProcessCorner::SF, 1.0, TEMP_HOT),
                Corner::new(ProcessCorner::FS, 1.0, TEMP_COLD),
            ],
        }
    }

    /// Full factorial grid over the given axes — "as many scenarios as you
    /// can imagine". The nominal corner is always the reference at index 0:
    /// if the grid already contains it (anywhere), it is moved to the
    /// front rather than duplicated, so no candidate ever simulates the
    /// same corner twice and corner labels stay unique.
    pub fn full_grid(processes: &[ProcessCorner], vdd_scales: &[f64], temps: &[f64]) -> Self {
        let mut corners = Vec::with_capacity(processes.len() * vdd_scales.len() * temps.len() + 1);
        for &p in processes {
            for &v in vdd_scales {
                for &t in temps {
                    corners.push(Corner::new(p, v, t));
                }
            }
        }
        match corners.iter().position(Corner::is_nominal) {
            Some(pos) => {
                let nominal = corners.remove(pos);
                corners.insert(0, nominal);
            }
            None => corners.insert(0, Corner::nominal()),
        }
        CornerSet {
            name: "full-grid",
            corners,
        }
    }

    /// Builds one evaluation plane per corner with `build` and splits off
    /// the reference plane (corner 0) from the extras — the shared
    /// scaffolding behind every corner-capable testbench's
    /// `with_corners` constructor.
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn split_planes<T>(&self, build: impl FnMut(&Corner) -> T) -> (T, Vec<T>) {
        assert!(!self.is_empty(), "corner set must not be empty");
        let mut planes: Vec<T> = self.corners.iter().map(build).collect();
        let base = planes.remove(0);
        (base, planes)
    }

    /// Number of corners in the set.
    pub fn len(&self) -> usize {
        self.corners.len()
    }

    /// True when the set is empty (never the case for the named sets).
    pub fn is_empty(&self) -> bool {
        self.corners.is_empty()
    }
}

impl Technology {
    /// The technology re-evaluated at a PVT corner: both model cards pass
    /// through the process derating and the Level-1 temperature update
    /// ([`MosModel::at_temperature`]), and the supply is scaled. At the
    /// nominal corner the result is bit-identical to `self`, so corner
    /// plane index 0 *is* the legacy nominal technology.
    pub fn at_corner(&self, corner: &Corner) -> Technology {
        if corner.is_nominal() {
            return self.clone();
        }
        Technology {
            name: self.name,
            nmos: corner
                .process
                .nmos_speed()
                .derate(&self.nmos)
                .at_temperature(corner.temp),
            pmos: corner
                .process
                .pmos_speed()
                .derate(&self.pmos)
                .at_temperature(corner.temp),
            vdd: self.vdd * corner.vdd_scale,
            l_min: self.l_min,
        }
    }
}

/// Generic 180nm-class process (1.8 V) used by the folded-cascode OTA and
/// the StrongARM latch experiments.
pub fn tech_180nm() -> Technology {
    let nmos = MosModel {
        polarity: MosPolarity::Nmos,
        vth0: 0.45,
        kp: 300e-6,
        clm: 0.03e-6,
        gamma: 0.40,
        phi: 0.80,
        nsub: 1.4,
        cox: 8.5e-3,
        cov: 3.0e-10,
        cj: 1.0e-3,
        ldiff: 0.5e-6,
        kf: 4.0e-25,
        af: 1.0,
        noise_gamma: 2.0 / 3.0,
    };
    let pmos = MosModel {
        polarity: MosPolarity::Pmos,
        vth0: 0.45,
        kp: 80e-6,
        kf: 1.5e-25,
        ..nmos.clone()
    };
    Technology {
        name: "generic-180nm",
        nmos,
        pmos,
        vdd: 1.8,
        l_min: 0.18e-6,
    }
}

/// Generic advanced-node-class process (0.75 V) used by the industrial
/// circuits (inverter chain, level shifter, LDO, CTLE).
pub fn tech_advanced() -> Technology {
    let nmos = MosModel {
        polarity: MosPolarity::Nmos,
        vth0: 0.30,
        kp: 650e-6,
        clm: 0.012e-6,
        gamma: 0.25,
        phi: 0.85,
        nsub: 1.35,
        cox: 2.4e-2,
        cov: 6.0e-10,
        cj: 2.0e-3,
        ldiff: 0.06e-6,
        kf: 8.0e-25,
        af: 1.0,
        noise_gamma: 1.0,
    };
    let pmos = MosModel {
        polarity: MosPolarity::Pmos,
        vth0: 0.30,
        kp: 500e-6,
        kf: 3.0e-25,
        ..nmos.clone()
    };
    Technology {
        name: "generic-advanced",
        nmos,
        pmos,
        vdd: 0.75,
        l_min: 0.02e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice::mos::eval_mos;

    #[test]
    fn cards_are_physical() {
        for t in [tech_180nm(), tech_advanced()] {
            assert!(t.vdd > 0.0);
            assert!(t.l_min > 0.0);
            assert!(t.nmos.vth0 < t.vdd, "{}: vth must leave headroom", t.name);
            assert!(t.pmos.kp <= t.nmos.kp, "{}: holes are slower", t.name);
            assert_eq!(t.nmos.polarity, MosPolarity::Nmos);
            assert_eq!(t.pmos.polarity, MosPolarity::Pmos);
        }
    }

    #[test]
    fn drive_current_magnitudes_are_sane() {
        // A 10/0.18 µm NMOS at full gate drive in 180nm should carry
        // hundreds of µA to a few mA.
        let t = tech_180nm();
        let e = eval_mos(&t.nmos, 10e-6, 0.18e-6, 1.0, t.vdd, t.vdd, 0.0);
        assert!(e.id > 100e-6 && e.id < 50e-3, "id = {}", e.id);
        // Advanced node: stronger per-µm drive at a lower supply.
        let ta = tech_advanced();
        let ea = eval_mos(&ta.nmos, 1e-6, 0.02e-6, 1.0, ta.vdd, ta.vdd, 0.0);
        assert!(ea.id > 100e-6, "advanced id = {}", ea.id);
    }

    #[test]
    fn advanced_node_has_more_clm() {
        let t180 = tech_180nm();
        let tadv = tech_advanced();
        // At the respective minimum lengths, the advanced node's lambda is
        // larger (worse intrinsic gain), as in real scaled processes.
        assert!(tadv.nmos.lambda(tadv.l_min) > t180.nmos.lambda(t180.l_min));
    }

    #[test]
    fn nominal_corner_is_the_identity() {
        for t in [tech_180nm(), tech_advanced()] {
            let c = t.at_corner(&Corner::nominal());
            assert_eq!(t, c);
            assert_eq!(t.vdd.to_bits(), c.vdd.to_bits());
            assert_eq!(t.nmos.vth0.to_bits(), c.nmos.vth0.to_bits());
            assert_eq!(t.nmos.kp.to_bits(), c.nmos.kp.to_bits());
        }
        assert!(Corner::nominal().is_nominal());
        assert!(!Corner::new(ProcessCorner::FF, 1.0, T_NOM).is_nominal());
        assert!(!Corner::new(ProcessCorner::TT, 1.05, T_NOM).is_nominal());
        assert!(!Corner::new(ProcessCorner::TT, 1.0, TEMP_HOT).is_nominal());
    }

    #[test]
    fn process_corners_derate_the_expected_flavor() {
        let t = tech_180nm();
        let ff = t.at_corner(&Corner::new(ProcessCorner::FF, 1.0, T_NOM));
        let ss = t.at_corner(&Corner::new(ProcessCorner::SS, 1.0, T_NOM));
        let sf = t.at_corner(&Corner::new(ProcessCorner::SF, 1.0, T_NOM));
        assert!(ff.nmos.vth0 < t.nmos.vth0 && ff.nmos.kp > t.nmos.kp);
        assert!(ss.nmos.vth0 > t.nmos.vth0 && ss.nmos.kp < t.nmos.kp);
        // SF: slow NMOS, fast PMOS.
        assert!(sf.nmos.vth0 > t.nmos.vth0);
        assert!(sf.pmos.vth0 < t.pmos.vth0);
        // Supply untouched at these corners.
        assert_eq!(sf.vdd.to_bits(), t.vdd.to_bits());
    }

    #[test]
    fn corner_scales_supply_and_temperature_flows_to_options() {
        let t = tech_advanced();
        let c = Corner::new(ProcessCorner::SS, 0.95, TEMP_HOT);
        let tc = t.at_corner(&c);
        assert!((tc.vdd - 0.95 * t.vdd).abs() < 1e-15);
        let opts = c.options(&spice::SimOptions::default());
        assert_eq!(opts.temp, TEMP_HOT);
        // Everything else untouched.
        assert_eq!(opts.max_nr_iters, spice::SimOptions::default().max_nr_iters);
    }

    #[test]
    fn named_sets_have_the_advertised_shape() {
        let nom = CornerSet::nominal();
        assert_eq!(nom.len(), 1);
        assert!(nom.corners[0].is_nominal());
        let pvt = CornerSet::pvt5();
        assert_eq!(pvt.len(), 5);
        assert!(pvt.corners[0].is_nominal(), "index 0 is the reference");
        // Every non-reference corner actually moves something.
        for c in &pvt.corners[1..] {
            assert!(!c.is_nominal());
        }
        // Labels are unique (they key per-corner reporting).
        let labels: Vec<String> = pvt.corners.iter().map(Corner::label).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        let grid = CornerSet::full_grid(
            &[ProcessCorner::TT, ProcessCorner::SS],
            &[0.95, 1.05],
            &[T_NOM, TEMP_HOT],
        );
        // 2·2·2 grid plus the prepended nominal reference.
        assert_eq!(grid.len(), 9);
        assert!(grid.corners[0].is_nominal());
    }

    #[test]
    fn full_grid_never_duplicates_the_nominal_corner() {
        // Grid contains nominal, but not at index 0: it must be *moved*
        // to the front, not duplicated (a duplicate would simulate the
        // same corner twice per candidate and break label uniqueness).
        let grid = CornerSet::full_grid(&[ProcessCorner::SS, ProcessCorner::TT], &[1.0], &[T_NOM]);
        assert_eq!(grid.len(), 2);
        assert!(grid.corners[0].is_nominal());
        assert_eq!(grid.corners.iter().filter(|c| c.is_nominal()).count(), 1);
        let labels: Vec<String> = grid.corners.iter().map(Corner::label).collect();
        assert_ne!(labels[0], labels[1]);
    }
}
