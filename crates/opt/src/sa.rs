//! Simulated Annealing — the stand-in for the "commercial black-box
//! optimizer based on Simulated Annealing" the paper uses as the industrial
//! baseline (Table V).

use std::time::Instant;

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::de::finish;
use crate::fom::Fom;
use crate::history::{Evaluator, RunResult, StopPolicy};
use crate::problem::SizingProblem;
use crate::Optimizer;

/// Classic single-chain simulated annealing on the FoM landscape with a
/// geometric temperature schedule and temperature-scaled Gaussian moves.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Initial temperature (in FoM units).
    pub t_initial: f64,
    /// Final temperature.
    pub t_final: f64,
    /// Initial step size as a fraction of each variable's range.
    pub step_fraction: f64,
    /// Number of restarts (the chain restarts from the incumbent best).
    pub restarts: usize,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            t_initial: 1.0,
            t_final: 1e-3,
            step_fraction: 0.25,
            restarts: 1,
        }
    }
}

impl Optimizer for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn run(
        &self,
        problem: &dyn SizingProblem,
        fom: &Fom,
        budget: usize,
        stop: StopPolicy,
        seed: u64,
    ) -> RunResult {
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let (lb, ub) = problem.bounds();
        let d = problem.dim();
        let mut ev = Evaluator::new(problem, fom, budget);

        let per_chain = (budget / self.restarts.max(1)).max(1);
        let cool = (self.t_final / self.t_initial).powf(1.0 / per_chain.max(2) as f64);

        let mut best_x: Option<Vec<f64>> = None;
        let mut best_f = f64::INFINITY;

        'outer: for restart in 0..self.restarts.max(1) {
            // Start from incumbent best after the first chain.
            let mut x: Vec<f64> = match (&best_x, restart) {
                (Some(b), r) if r > 0 => b.clone(),
                _ => lb
                    .iter()
                    .zip(&ub)
                    .map(|(&l, &u)| if u > l { rng.gen_range(l..u) } else { l })
                    .collect(),
            };
            if ev.exhausted() {
                break;
            }
            let e = ev.evaluate(&x);
            let mut fx = e.fom;
            if fx < best_f {
                best_f = fx;
                best_x = Some(x.clone());
            }
            if stop == StopPolicy::FirstFeasible && e.feasible {
                break 'outer;
            }

            let mut temp = self.t_initial;
            while !ev.exhausted() && temp > self.t_final {
                // Temperature-scaled Gaussian move on every coordinate.
                let scale = self.step_fraction * (temp / self.t_initial).sqrt();
                let cand: Vec<f64> = x
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        let sigma = scale * (ub[j] - lb[j]);
                        (v + sigma * nn_gaussian(&mut rng)).clamp(lb[j], ub[j])
                    })
                    .collect();
                let e = ev.evaluate(&cand);
                let accept = e.fom <= fx || {
                    let p = ((fx - e.fom) / temp).exp();
                    rng.gen::<f64>() < p
                };
                if accept {
                    x = cand;
                    fx = e.fom;
                }
                if e.fom < best_f {
                    best_f = e.fom;
                    best_x = Some(e.x.clone());
                }
                if stop == StopPolicy::FirstFeasible && e.feasible {
                    break 'outer;
                }
                temp *= cool;
            }
        }
        // Spend any leftover budget as pure hill-climbing around the best.
        if let Some(bx) = best_x {
            let mut x = bx;
            let mut fx = best_f;
            while !ev.exhausted() {
                let cand: Vec<f64> = x
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        let sigma = 0.02 * (ub[j] - lb[j]);
                        (v + sigma * nn_gaussian(&mut rng)).clamp(lb[j], ub[j])
                    })
                    .collect();
                let e = ev.evaluate(&cand);
                if e.fom <= fx {
                    x = cand;
                    fx = e.fom;
                }
                if stop == StopPolicy::FirstFeasible && e.feasible {
                    break;
                }
            }
        }
        let _ = d;
        finish(self.name(), ev, t0)
    }
}

/// Local Box-Muller (avoids a dependency edge from `opt` to `nn`).
fn nn_gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_problems::{NarrowBand, Sphere};

    #[test]
    fn improves_over_random_start() {
        let p = Sphere { d: 6 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let sa = SimulatedAnnealing::default();
        let run = sa.run(&p, &fom, 1500, StopPolicy::Exhaust, 4);
        let first = run.history.entries()[0].fom;
        let best = run.history.best().unwrap().fom;
        assert!(best < first * 0.5, "no improvement: {first} -> {best}");
    }

    #[test]
    fn finds_feasible_on_sphere() {
        let p = Sphere { d: 4 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let sa = SimulatedAnnealing::default();
        let run = sa.run(&p, &fom, 2000, StopPolicy::FirstFeasible, 9);
        assert!(run.sims_to_feasible().is_some());
    }

    #[test]
    fn narrow_band_needs_many_sims() {
        // SA on the narrow-band problem should be substantially less
        // sample-efficient than on the sphere — this asymmetry is what
        // Table V exploits.
        let p = NarrowBand { d: 2 };
        let fom = Fom::uniform(0.1, p.num_constraints());
        let sa = SimulatedAnnealing::default();
        let run = sa.run(&p, &fom, 4000, StopPolicy::FirstFeasible, 2);
        if let Some(n) = run.sims_to_feasible() {
            assert!(n > 10, "implausibly fast: {n}");
        }
    }

    #[test]
    fn respects_budget() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let sa = SimulatedAnnealing::default();
        let run = sa.run(&p, &fom, 500, StopPolicy::Exhaust, 1);
        assert_eq!(run.history.len(), 500);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let sa = SimulatedAnnealing::default();
        let a = sa.run(&p, &fom, 300, StopPolicy::Exhaust, 8);
        let b = sa.run(&p, &fom, 300, StopPolicy::Exhaust, 8);
        assert_eq!(a.history.best_trace(), b.history.best_trace());
    }

    #[test]
    fn restarts_are_supported() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let sa = SimulatedAnnealing {
            restarts: 4,
            ..Default::default()
        };
        let run = sa.run(&p, &fom, 400, StopPolicy::Exhaust, 8);
        assert_eq!(run.history.len(), 400);
    }
}
