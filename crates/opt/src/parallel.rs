//! Deterministic data parallelism for population evaluation.
//!
//! Optimizers evaluate candidate populations through
//! [`crate::Evaluator::evaluate_batch`], which fans the expensive
//! simulations out over the process-wide worker pool ([`linalg::pool`])
//! via [`par_map`]. Parallelism changes **wall-clock time only**, never
//! results:
//!
//! - candidates are generated *before* evaluation (with per-candidate
//!   seeded RNGs where generation is stochastic, see [`candidate_seed`]),
//! - work units are assigned to workers by a fixed round-robin rule
//!   (worker `t` of `T` owns units `t, t + T, t + 2T, …` — a pure
//!   function of unit index and thread count, with no queue and no
//!   stealing) and results are reassembled in input order, so the output
//!   vector is independent of thread count and scheduling,
//! - evaluations are recorded into the history in the original candidate
//!   order.
//!
//! Round-robin (rather than contiguous-chunk) assignment keeps workers
//! balanced on hierarchical unit grids: a candidate's corner × analysis
//! units land on different workers instead of one worker owning all the
//! expensive units of one candidate.
//!
//! The worker count defaults to the machine's available parallelism,
//! clamped by the `DNNOPT_THREADS` environment variable and overridable
//! programmatically with [`set_max_threads`] (used by the determinism
//! tests to compare serial and parallel runs). The cap is shared with the
//! threaded GEMM path: while a fan-out from this module is in flight it
//! holds a [`linalg::pool::grid_scope`] guard, so any GEMM issued from
//! inside a worker runs serial instead of oversubscribing the host (the
//! two-level thread budget — see [`linalg::pool`]).
//!
//! [`par_map_with`] additionally gives every worker thread a private
//! context that lives for its whole share of the batch.
//! [`crate::Evaluator::evaluate_batch`] uses it for per-worker timing
//! accumulators, and the circuit testbenches compose with it
//! transparently: each `evaluate` leases simulator workspaces from
//! `spice`'s topology-keyed pool, so a worker evaluating its share of
//! candidates reuses the same recorded solver state (stamp→slot maps,
//! sparse patterns, factor storage) across all of them — per-thread while
//! a batch is in flight, shared across batches afterwards — without ever
//! affecting results (enforced by `tests/parallel_determinism.rs`).

// The budget lives in `linalg::pool` so the GEMM layer can see it too;
// re-exported here because the optimizer-facing API has always been
// `opt::parallel::{set_max_threads, max_threads}`.
pub use linalg::pool::{max_threads, set_max_threads};

/// Mixes a run seed, a round index, and a candidate index into an
/// independent per-candidate RNG seed (SplitMix64 finalizer). Candidate
/// generation seeded this way is identical no matter how work is split
/// across threads — the keystone of bit-identical parallel evaluation.
pub fn candidate_seed(seed: u64, round: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies `f` to every item, in parallel when it pays off, returning the
/// results **in input order**. Items are split into one contiguous chunk
/// per worker; each worker maps its chunk independently, so `f` must be
/// pure with respect to ordering (it sees only its item).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(items, || (), |(), item| f(item)).0
}

/// Like [`par_map`], but with **worker-local state**: every worker thread
/// builds one context via `init` and threads it through its whole chunk —
/// the hook for expensive per-thread resources (scratch buffers, counters,
/// leased simulator workspaces) that should be reused *across candidates*
/// instead of being rebuilt per evaluation. Returns the in-order results
/// plus every worker's final context (serial path: exactly one context).
///
/// Determinism contract: `f`'s *result* must not depend on the context's
/// contents — contexts may only carry caches and accumulators — because
/// which items share a context depends on the thread count.
pub fn par_map_with<T, U, C, Init, F>(items: &[T], init: Init, f: F) -> (Vec<U>, Vec<C>)
where
    T: Sync,
    U: Send,
    C: Send,
    Init: Fn() -> C + Sync,
    F: Fn(&mut C, &T) -> U + Sync,
{
    let (out, ctxs) = try_par_map_with(items, init, |ctx, item| f(ctx, item));
    let unwrapped = out
        .into_iter()
        .map(|r| match r {
            Ok(u) => u,
            Err(msg) => panic!("population evaluation worker panicked: {msg}"),
        })
        .collect();
    (unwrapped, ctxs)
}

/// Extracts a readable message from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Panic-isolating [`par_map_with`]: each item is mapped inside
/// `catch_unwind`, so one panicking candidate yields one `Err(message)`
/// slot while the rest of the batch completes normally — in input order,
/// bit-identical between the serial and parallel paths (both catch per
/// item). The batch evaluator converts the `Err` slots into failed
/// outcomes so a panicking testbench degrades to a diagnosed failure
/// instead of killing the whole optimization.
///
/// A worker whose context is poisoned by the panic simply keeps going:
/// contexts hold only caches/accumulators (see the determinism contract
/// on [`par_map_with`]), and `f` is required to be unwind-safe in the
/// sense that a panicking item leaves the context usable.
pub fn try_par_map_with<T, U, C, Init, F>(
    items: &[T],
    init: Init,
    f: F,
) -> (Vec<Result<U, String>>, Vec<C>)
where
    T: Sync,
    U: Send,
    C: Send,
    Init: Fn() -> C + Sync,
    F: Fn(&mut C, &T) -> U + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let catch = |ctx: &mut C, item: &T| {
        catch_unwind(AssertUnwindSafe(|| f(ctx, item))).map_err(panic_message)
    };
    let threads = max_threads().min(items.len());
    if threads <= 1 {
        let mut ctx = init();
        let out = items.iter().map(|item| catch(&mut ctx, item)).collect();
        return (out, vec![ctx]);
    }
    // Hold the grid half of the two-level thread budget for the duration
    // of the fan-out: GEMMs issued from inside a worker run serial.
    let _grid = linalg::pool::grid_scope();
    // Worker `t` owns items `t, t + T, t + 2T, …` — the fixed round-robin
    // assignment. Each slot deposits its in-order partial results plus its
    // context; the mutexes are per-slot and uncontended (one writer each).
    type SlotOut<U, C> = Option<(Vec<Result<U, String>>, C)>;
    let slots: Vec<std::sync::Mutex<SlotOut<U, C>>> =
        (0..threads).map(|_| std::sync::Mutex::new(None)).collect();
    linalg::pool::run(threads, &|slot| {
        let _gs = telemetry::span_with(telemetry::SpanId::GridSlot, slot as u64);
        let mut ctx = init();
        let mut out = Vec::with_capacity(items.len().div_ceil(threads));
        let mut i = slot;
        while i < items.len() {
            out.push(catch(&mut ctx, &items[i]));
            i += threads;
        }
        *slots[slot].lock().unwrap() = Some((out, ctx));
    });
    let mut contexts = Vec::with_capacity(threads);
    let mut per_slot = Vec::with_capacity(threads);
    for cell in slots {
        // Every slot ran exactly once (the pool's contract), and workers
        // cannot panic out of the deposit (every item is caught).
        let (out, ctx) = cell
            .into_inner()
            .unwrap()
            .expect("pool slot never deposited its results");
        per_slot.push(out.into_iter());
        contexts.push(ctx);
    }
    // Inverse of the round-robin split: item `i` is the next undrained
    // result of slot `i mod T`.
    let results = (0..items.len())
        .map(|i| {
            per_slot[i % threads]
                .next()
                .expect("slot result count mismatch")
        })
        .collect();
    (results, contexts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..103).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<f64> = (0..57).map(|i| i as f64 * 0.37).collect();
        set_max_threads(1);
        let serial = par_map(&items, |&x| (x.sin() * 1e6).to_bits());
        set_max_threads(8);
        let parallel = par_map(&items, |&x| (x.sin() * 1e6).to_bits());
        set_max_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_with_reuses_one_context_per_worker() {
        let items: Vec<u32> = (0..37).collect();
        set_max_threads(4);
        let (out, ctxs) = par_map_with(
            &items,
            || 0usize,
            |count, &x| {
                *count += 1;
                x * 3
            },
        );
        set_max_threads(0);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        // Every item was seen exactly once, spread over the workers.
        assert_eq!(ctxs.iter().sum::<usize>(), items.len());
        assert!(ctxs.len() <= 4 && !ctxs.is_empty());
        // Serial path: a single context sees everything.
        set_max_threads(1);
        let (_, ctxs) = par_map_with(&items, || 0usize, |c, _| *c += 1);
        set_max_threads(0);
        assert_eq!(ctxs, vec![items.len()]);
    }

    #[test]
    fn panicking_item_yields_err_and_intact_ordered_batch() {
        let items: Vec<u32> = (0..23).collect();
        for threads in [1usize, 4] {
            set_max_threads(threads);
            let (out, _) = try_par_map_with(
                &items,
                || (),
                |(), &x| {
                    if x == 7 {
                        panic!("boom on {x}");
                    }
                    x * 2
                },
            );
            set_max_threads(0);
            assert_eq!(out.len(), items.len(), "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                if i == 7 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("boom on 7"), "got panic message {msg:?}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), items[i] * 2);
                }
            }
        }
    }

    #[test]
    fn candidate_seeds_are_decorrelated() {
        let a = candidate_seed(1, 0, 0);
        let b = candidate_seed(1, 0, 1);
        let c = candidate_seed(1, 1, 0);
        let d = candidate_seed(2, 0, 0);
        let all = [a, b, c, d];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }
}
