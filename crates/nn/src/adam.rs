//! Adam optimizer.

use linalg::Matrix;

use crate::mlp::{Gradients, Mlp};

/// The Adam optimizer (Kingma & Ba, 2015) with bias correction.
///
/// State is lazily allocated to match the first network it steps; stepping a
/// differently shaped network afterwards panics.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    t: u64,
    m_w: Vec<Matrix>,
    v_w: Vec<Matrix>,
    m_b: Vec<Vec<f64>>,
    v_b: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates an optimizer with the given learning rate and standard
    /// hyperparameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m_w: Vec::new(),
            v_w: Vec::new(),
            m_b: Vec::new(),
            v_b: Vec::new(),
        }
    }

    fn ensure_state(&mut self, net: &Mlp, grads: &Gradients) {
        if !self.m_w.is_empty() {
            return;
        }
        for (rows, cols) in net.shapes() {
            self.m_w.push(Matrix::zeros(rows, cols));
            self.v_w.push(Matrix::zeros(rows, cols));
        }
        for db in &grads.db {
            self.m_b.push(vec![0.0; db.len()]);
            self.v_b.push(vec![0.0; db.len()]);
        }
    }

    /// Applies one Adam update of `net` along `-grads`, writing the update
    /// directly into the parameters — no per-step allocation. Weights and
    /// biases run through the same flat-slice kernel
    /// ([`Adam::update_slice`]), the single-pass walk shared with
    /// [`Gradients::norm_sq`] / [`Gradients::scale`].
    ///
    /// # Panics
    ///
    /// Panics if the gradient shapes do not match the state created on the
    /// first call.
    pub fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        self.ensure_state(net, grads);
        self.t += 1;
        // Bias corrections as reciprocals: two multiplies per element
        // instead of two divisions in the inner loop.
        let rb1t = 1.0 / (1.0 - self.beta1.powi(self.t as i32));
        let rb2t = 1.0 / (1.0 - self.beta2.powi(self.t as i32));
        let hyper = (self.lr, self.beta1, self.beta2, self.eps, rb1t, rb2t);

        for k in 0..grads.dw.len() {
            let (w, b) = net.layer_params_mut(k);
            let g = &grads.dw[k];
            assert_eq!(
                (g.rows(), g.cols()),
                (w.rows(), w.cols()),
                "gradient shape does not match layer {k}"
            );
            let m = self.m_w[k].as_mut_slice();
            let v = self.v_w[k].as_mut_slice();
            assert_eq!(
                m.len(),
                g.as_slice().len(),
                "optimizer state does not match layer {k}; call reset() before \
                 stepping a differently shaped network"
            );
            Self::update_slice(hyper, w.as_mut_slice(), g.as_slice(), m, v);

            let gb = &grads.db[k];
            assert_eq!(
                gb.len(),
                b.len(),
                "bias gradient length mismatch at layer {k}"
            );
            let mb = &mut self.m_b[k];
            let vb = &mut self.v_b[k];
            assert_eq!(
                mb.len(),
                gb.len(),
                "optimizer state does not match layer {k}; call reset() before \
                 stepping a differently shaped network"
            );
            Self::update_slice(hyper, b, gb, mb, vb);
        }
    }

    /// One bias-corrected Adam update over a flat parameter slice: a single
    /// fused pass updating both moments and the parameters. On x86-64 with
    /// AVX2 the same IEEE operations are compiled 4-wide (the remaining
    /// divide and square root dominate the scalar build), which cannot
    /// change any bit of the result — every op is exactly rounded.
    #[inline]
    fn update_slice(
        hyper: (f64, f64, f64, f64, f64, f64),
        params: &mut [f64],
        grads: &[f64],
        m: &mut [f64],
        v: &mut [f64],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 availability checked above.
                unsafe { Self::update_slice_avx2(hyper, params, grads, m, v) };
                return;
            }
        }
        Self::update_slice_body(hyper, params, grads, m, v);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn update_slice_avx2(
        hyper: (f64, f64, f64, f64, f64, f64),
        params: &mut [f64],
        grads: &[f64],
        m: &mut [f64],
        v: &mut [f64],
    ) {
        Self::update_slice_body(hyper, params, grads, m, v);
    }

    #[inline(always)]
    fn update_slice_body(
        (lr, beta1, beta2, eps, rb1t, rb2t): (f64, f64, f64, f64, f64, f64),
        params: &mut [f64],
        grads: &[f64],
        m: &mut [f64],
        v: &mut [f64],
    ) {
        for (((px, &gx), mx), vx) in params
            .iter_mut()
            .zip(grads)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mx = beta1 * *mx + (1.0 - beta1) * gx;
            *vx = beta2 * *vx + (1.0 - beta2) * gx * gx;
            let mhat = *mx * rb1t;
            let vhat = *vx * rb2t;
            *px += -lr * mhat / (vhat.sqrt() + eps);
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Resets moments and step count (e.g. when re-initializing a network).
    pub fn reset(&mut self) {
        self.t = 0;
        self.m_w.clear();
        self.v_w.clear();
        self.m_b.clear();
        self.v_b.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Activation;
    use crate::{mse, train_step_mse};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn converges_on_linear_regression() {
        // y = 2x - 1 learned by a linear "network" (no hidden layer).
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Mlp::new(&[1, 1], Activation::Relu, &mut rng);
        let x = Matrix::from_fn(16, 1, |i, _| i as f64 / 8.0 - 1.0);
        let y = x.map(|v| 2.0 * v - 1.0);
        let mut adam = Adam::new(0.05);
        for _ in 0..500 {
            train_step_mse(&mut net, &mut adam, &x, &y);
        }
        let pred = net.forward(&x);
        assert!(mse(&pred, &y) < 1e-6, "final mse {}", mse(&pred, &y));
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn converges_on_nonlinear_regression() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Mlp::new(&[2, 24, 24, 1], Activation::Tanh, &mut rng);
        // f(a, b) = a² - b, a smooth nonconvex target.
        let mut xs = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                xs.push(vec![i as f64 / 5.0 - 1.0, j as f64 / 5.0 - 1.0]);
            }
        }
        let x = Matrix::from_fn(100, 2, |i, j| xs[i][j]);
        let y = Matrix::from_fn(100, 1, |i, _| xs[i][0] * xs[i][0] - xs[i][1]);
        let mut adam = Adam::new(5e-3);
        let mut last = f64::INFINITY;
        for _ in 0..800 {
            last = train_step_mse(&mut net, &mut adam, &x, &y);
        }
        assert!(last < 5e-3, "final mse {last}");
    }

    #[test]
    fn loss_decreases_monotonically_at_start() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, &mut rng);
        let x = Matrix::from_fn(8, 1, |i, _| i as f64);
        let y = x.map(|v| 0.3 * v);
        let mut adam = Adam::new(1e-3);
        let l0 = train_step_mse(&mut net, &mut adam, &x, &y);
        let mut l = l0;
        for _ in 0..20 {
            l = train_step_mse(&mut net, &mut adam, &x, &y);
        }
        assert!(l < l0, "loss should decrease: {l0} -> {l}");
    }

    #[test]
    fn reset_clears_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Mlp::new(&[1, 4, 1], Activation::Relu, &mut rng);
        let x = Matrix::from_fn(4, 1, |i, _| i as f64);
        let y = x.clone();
        let mut adam = Adam::new(1e-3);
        train_step_mse(&mut net, &mut adam, &x, &y);
        assert_eq!(adam.steps(), 1);
        adam.reset();
        assert_eq!(adam.steps(), 0);
        // Works again after reset.
        train_step_mse(&mut net, &mut adam, &x, &y);
        assert_eq!(adam.steps(), 1);
    }
}
