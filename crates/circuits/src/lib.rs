//! Parameterized analog circuits with full measurement extraction — the six
//! sizing problems of the DNN-Opt paper.
//!
//! Small building blocks (180nm-class, paper §III-A):
//! - [`FoldedCascodeOta`] — Table I / Eq. 9 (20 variables, 29 constraints)
//!
//! All problems implement [`opt::SizingProblem`], so every optimizer in the
//! workspace (including DNN-Opt) runs on them unchanged.

pub mod measure;
pub mod parasitics;
pub mod tech;

mod comparator;
mod ctle;
mod inverter_chain;
mod ldo;
mod level_shifter;
mod ota;

pub use comparator::{LatchParams, StrongArmLatch};
pub use ctle::Ctle;
pub use inverter_chain::InverterChain;
pub use ldo::Ldo;
pub use level_shifter::LevelShifter;
pub use ota::{FoldedCascodeOta, OtaParams, OtaReport};
