//! Transient analysis with trapezoidal integration.
//!
//! Capacitors (explicit and MOSFET-intrinsic) are replaced by their
//! trapezoidal companion models; the resulting resistive system is solved by
//! the same damped Newton-Raphson used for the operating point. The step
//! size is the user-supplied base step, clipped at source-waveform
//! breakpoints; when a step refuses to converge it is halved (up to
//! [`crate::SimOptions::max_step_halvings`] times) and grown back
//! afterwards.

use crate::analysis::dc;
use crate::diag::{FailureDiag, LadderStage, NewtonFailure};
use crate::error::SpiceError;
use crate::netlist::{Circuit, NodeId};
use crate::options::SimOptions;
use crate::stamp::{node_voltage, stamp_resistive_system, Assemble, SourceEval, Stamp};
use crate::workspace::{NewtonWorkspace, StampKind};

/// Result of a transient run: node voltages (and source branch currents)
/// over time.
#[derive(Debug, Clone)]
pub struct TranResult {
    t: Vec<f64>,
    /// `v[step][node]`; index 0 is ground.
    v: Vec<Vec<f64>>,
    /// `branch[step][branch_index]` — currents of voltage-source-like
    /// devices, for power measurements.
    branch: Vec<Vec<f64>>,
}

impl TranResult {
    /// Time points \[s\].
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Number of accepted time points.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// True if the run produced no points (never happens for a successful
    /// analysis, which always stores the initial point).
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Voltage of `node` at step index `i`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn voltage(&self, i: usize, node: NodeId) -> f64 {
        self.v[i][node]
    }

    /// Full waveform of one node as `(t, v)` pairs.
    pub fn waveform(&self, node: NodeId) -> Vec<(f64, f64)> {
        self.t
            .iter()
            .zip(&self.v)
            .map(|(&t, vs)| (t, vs[node]))
            .collect()
    }

    /// Linearly interpolated voltage of `node` at an arbitrary time
    /// (clamped to the simulated range).
    pub fn sample(&self, node: NodeId, time: f64) -> f64 {
        if self.t.is_empty() {
            return 0.0;
        }
        if time <= self.t[0] {
            return self.v[0][node];
        }
        if time >= *self.t.last().unwrap() {
            return self.v.last().unwrap()[node];
        }
        // Binary search for the bracketing interval.
        let mut lo = 0;
        let mut hi = self.t.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.t[mid] <= time {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (t0, t1) = (self.t[lo], self.t[hi]);
        let (v0, v1) = (self.v[lo][node], self.v[hi][node]);
        if t1 == t0 {
            v1
        } else {
            v0 + (v1 - v0) * (time - t0) / (t1 - t0)
        }
    }

    /// Final voltage of a node.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        self.v.last().map_or(0.0, |vs| vs[node])
    }

    /// Current through a voltage source at step `i` (SPICE sign convention,
    /// matching [`crate::OpPoint::source_current`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if `name` is not a voltage
    /// source or VCVS of `circuit`.
    pub fn source_current(
        &self,
        circuit: &Circuit,
        name: &str,
        i: usize,
    ) -> Result<f64, SpiceError> {
        let idx = circuit
            .device_index(name)
            .ok_or_else(|| SpiceError::UnknownDevice {
                name: name.to_string(),
            })?;
        match &circuit.devices()[idx] {
            crate::netlist::Device::VSource { branch, .. }
            | crate::netlist::Device::Vcvs { branch, .. } => Ok(self.branch[i][*branch]),
            _ => Err(SpiceError::UnknownDevice {
                name: name.to_string(),
            }),
        }
    }

    /// Charge delivered *by* a voltage source over `[t_from, t_to]`
    /// (trapezoidal integral of `−i(t)`, positive when the source sources
    /// current). Multiply by the source voltage for energy.
    ///
    /// # Errors
    ///
    /// Same as [`TranResult::source_current`].
    pub fn delivered_charge(
        &self,
        circuit: &Circuit,
        name: &str,
        t_from: f64,
        t_to: f64,
    ) -> Result<f64, SpiceError> {
        let mut q = 0.0;
        for i in 1..self.t.len() {
            let (t0, t1) = (self.t[i - 1], self.t[i]);
            if t1 <= t_from || t0 >= t_to {
                continue;
            }
            let i0 = -self.source_current(circuit, name, i - 1)?;
            let i1 = -self.source_current(circuit, name, i)?;
            q += 0.5 * (i0 + i1) * (t1 - t0);
        }
        Ok(q)
    }
}

/// One capacitive element with its trapezoidal state.
struct CapState {
    a: NodeId,
    b: NodeId,
    c: f64,
    /// Capacitor voltage at the previous accepted step.
    v_prev: f64,
    /// Capacitor current at the previous accepted step (a → b).
    i_prev: f64,
}

/// The transient assembly: gmin loading, the linearized resistive stamps
/// at time `t`, and the trapezoidal companion of every capacitor.
struct TranAssemble<'a> {
    circuit: &'a Circuit,
    caps: &'a [CapState],
    gmin: f64,
    /// Time of the step being solved \[s\].
    t: f64,
    /// Step size \[s\].
    h: f64,
}

impl TranAssemble<'_> {
    /// Trapezoidal companion for each capacitor:
    ///   `i_{n+1} = (2C/h)(v_{n+1} − v_n) − i_n`
    /// = `geq·v_{n+1} + i0` with `geq = 2C/h`, `i0 = −geq·v_n − i_n`.
    /// The companion values depend on the timestep state (`h`, `v_prev`,
    /// `i_prev`) but not on the Newton iterate — constant within a solve.
    fn stamp_companions<S: Stamp>(&self, st: &mut S) {
        for cap in self.caps {
            let geq = 2.0 * cap.c / self.h;
            let i0 = -geq * cap.v_prev - cap.i_prev;
            st.conductance(cap.a, cap.b, geq);
            st.current_source(cap.a, cap.b, i0);
        }
    }
}

impl Assemble for TranAssemble<'_> {
    fn assemble<S: Stamp>(&mut self, xk: &[f64], st: &mut S) {
        st.load_gmin(self.gmin);
        stamp_resistive_system(self.circuit, xk, SourceEval::Time { t: self.t }, st);
        self.stamp_companions(st);
    }

    fn supports_split(&self) -> bool {
        true
    }

    fn assemble_constant<S: Stamp>(&mut self, st: &mut S) {
        st.load_gmin(self.gmin);
        crate::stamp::stamp_resistive_linear(self.circuit, SourceEval::Time { t: self.t }, st);
        self.stamp_companions(st);
    }

    fn assemble_varying<S: Stamp>(&mut self, xk: &[f64], st: &mut S) {
        crate::stamp::stamp_resistive_mos(self.circuit, xk, st);
    }
}

/// NR solve of one timestep. `x` enters as the previous solution and leaves
/// as the new one on success. All solver buffers come from `ws`, which is
/// shared across every timestep (and step-halving retry) of the run.
fn solve_step(
    circuit: &Circuit,
    opts: &SimOptions,
    caps: &[CapState],
    t: f64,
    h: f64,
    x: &mut Vec<f64>,
    ws: &mut NewtonWorkspace,
) -> Result<(), NewtonFailure> {
    let (xn, _) = crate::analysis::dc::newton_loop(
        circuit,
        opts,
        opts.max_nr_iters,
        x,
        ws,
        StampKind::Tran,
        TranAssemble {
            circuit,
            caps,
            gmin: opts.gmin,
            t,
            h,
        },
    )?;
    *x = xn;
    Ok(())
}

/// Runs a transient analysis from `t = 0` to `t_stop` with base step
/// `t_step`. The initial condition is the DC operating point with sources at
/// their `t = 0` values.
///
/// # Errors
///
/// Fails if the initial operating point cannot be found, if parameters are
/// invalid, or if some timestep refuses to converge even at the minimum
/// step size.
pub fn transient(
    circuit: &Circuit,
    opts: &SimOptions,
    t_stop: f64,
    t_step: f64,
) -> Result<TranResult, SpiceError> {
    // Lease from the process-wide pool so repeated runs on the same
    // topology reuse the recorded stamp→slot maps and factor storage.
    let mut ws = crate::workspace::lease_workspace(circuit);
    transient_with_workspace(circuit, opts, t_stop, t_step, &mut ws)
}

/// Runs a transient analysis using caller-owned solver state (see
/// [`transient`]). The workspace is shared by the initial operating point,
/// every timestep, and every step-halving retry; reuse one workspace across
/// runs of the same topology (optimizer candidates) for the full benefit of
/// the recorded sparse patterns.
///
/// # Errors
///
/// Same failure modes as [`transient`].
pub fn transient_with_workspace(
    circuit: &Circuit,
    opts: &SimOptions,
    t_stop: f64,
    t_step: f64,
    ws: &mut NewtonWorkspace,
) -> Result<TranResult, SpiceError> {
    if !(t_stop > 0.0) || !(t_step > 0.0) || t_step > t_stop {
        return Err(SpiceError::BadAnalysis {
            reason: format!("invalid transient window: stop={t_stop}, step={t_step}"),
        });
    }
    // Initial condition.
    let op0 = dc::op_with_workspace(circuit, opts, None, ws)?;
    let mut x = op0.raw().to_vec();

    // Collect waveform breakpoints, sorted and deduplicated.
    let mut breakpoints: Vec<f64> = Vec::new();
    for dev in circuit.devices() {
        match dev {
            crate::netlist::Device::VSource { wave, .. }
            | crate::netlist::Device::ISource { wave, .. } => {
                breakpoints.extend(wave.breakpoints(t_stop));
            }
            _ => {}
        }
    }
    breakpoints.sort_by(|a, b| a.partial_cmp(b).unwrap());
    breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-18);

    // Capacitive elements with initial state (v from OP, i = 0: DC steady
    // state has no capacitor current).
    let mut caps: Vec<CapState> = circuit
        .capacitive_elements()
        .into_iter()
        .filter(|&(_, _, c)| c > 0.0)
        .map(|(a, b, c)| CapState {
            a,
            b,
            c,
            v_prev: node_voltage(&x, a) - node_voltage(&x, b),
            i_prev: 0.0,
        })
        .collect();

    let mut t = 0.0;
    let mut result = TranResult {
        t: vec![0.0],
        v: vec![unknowns_to_voltages(circuit, &x)],
        branch: vec![unknowns_to_branches(circuit, &x)],
    };
    let mut h = t_step;
    let mut bp_iter = breakpoints.into_iter().peekable();
    let mut easy_steps = 0usize;

    while t < t_stop - 1e-18 {
        // Clip the step at the next breakpoint and at t_stop.
        let mut h_eff = h.min(t_stop - t);
        if let Some(&bp) = bp_iter.peek() {
            if bp > t + 1e-18 && bp < t + h_eff {
                h_eff = bp - t;
            }
        }

        let mut halvings = 0;
        let mut iters_spent = 0usize;
        let mut injected = false;
        let mut x_try = x.clone();
        loop {
            let t_new = t + h_eff;
            match solve_step(circuit, opts, &caps, t_new, h_eff, &mut x_try, ws) {
                Ok(()) => break,
                Err(e) => {
                    iters_spent += e.iterations;
                    injected |= e.injected;
                    halvings += 1;
                    telemetry::record(telemetry::Metric::StepHalvings, 1);
                    if halvings > opts.max_step_halvings {
                        // The step underflowed: the halving ladder is
                        // exhausted, whatever the inner Newton failures were.
                        return Err(SpiceError::Solver(FailureDiag {
                            kind: crate::diag::FailureKind::StepUnderflow,
                            analysis: "transient",
                            stage: LadderStage::StepHalving,
                            iterations: iters_spent,
                            halvings: halvings - 1,
                            injected,
                        }));
                    }
                    h_eff *= 0.5;
                    x_try = x.clone();
                }
            }
        }

        let t_new = t + h_eff;
        // Update capacitor states (trapezoidal).
        for cap in &mut caps {
            let v_new = node_voltage(&x_try, cap.a) - node_voltage(&x_try, cap.b);
            let i_new = 2.0 * cap.c / h_eff * (v_new - cap.v_prev) - cap.i_prev;
            cap.v_prev = v_new;
            cap.i_prev = i_new;
        }
        x = x_try;
        t = t_new;
        result.t.push(t);
        result.v.push(unknowns_to_voltages(circuit, &x));
        result.branch.push(unknowns_to_branches(circuit, &x));
        // Consume passed breakpoints.
        while matches!(bp_iter.peek(), Some(&bp) if bp <= t + 1e-18) {
            bp_iter.next();
        }
        // Step-size recovery after halvings.
        if halvings == 0 {
            easy_steps += 1;
            if easy_steps >= 4 && h < t_step {
                h = (h * 2.0).min(t_step);
                easy_steps = 0;
            }
        } else {
            h = h_eff.max(t_step / 2f64.powi(opts.max_step_halvings as i32));
            easy_steps = 0;
        }
    }
    Ok(result)
}

fn unknowns_to_voltages(circuit: &Circuit, x: &[f64]) -> Vec<f64> {
    let mut v = vec![0.0; circuit.num_nodes()];
    for (node, vn) in v.iter_mut().enumerate().skip(1) {
        *vn = x[node - 1];
    }
    v
}

fn unknowns_to_branches(circuit: &Circuit, x: &[f64]) -> Vec<f64> {
    x[(circuit.num_nodes() - 1)..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GND;
    use crate::waveform::Waveform;

    #[test]
    fn rc_step_response() {
        // Series R=1k into C=1u, step 0 -> 1 V at t=1ms. τ = 1 ms.
        let mut c = Circuit::new();
        let a = c.node("in");
        let b = c.node("out");
        c.add_vsource(
            "V1",
            a,
            GND,
            Waveform::pulse(0.0, 1.0, 1e-3, 1e-9, 1e-9, 1.0, f64::INFINITY),
        )
        .unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_capacitor("C1", b, GND, 1e-6).unwrap();
        let r = transient(&c, &SimOptions::default(), 6e-3, 20e-6).unwrap();
        // One τ after the step: 1 - e^-1 ≈ 0.6321.
        let v_tau = r.sample(b, 2e-3);
        assert!((v_tau - 0.6321).abs() < 0.01, "v(τ) = {v_tau}");
        // Five τ: essentially settled.
        let v_5tau = r.sample(b, 6e-3);
        assert!((v_5tau - 1.0).abs() < 0.01, "v(5τ) = {v_5tau}");
        // Before the step: zero.
        assert!(r.sample(b, 0.5e-3).abs() < 1e-6);
    }

    #[test]
    fn trapezoidal_beats_large_error() {
        // Accuracy check: RC with only 20 steps per τ should still be
        // within 1% thanks to second-order integration.
        let mut c = Circuit::new();
        let a = c.node("in");
        let b = c.node("out");
        c.add_vsource(
            "V1",
            a,
            GND,
            Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, f64::INFINITY),
        )
        .unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_capacitor("C1", b, GND, 1e-6).unwrap();
        let r = transient(&c, &SimOptions::default(), 2e-3, 50e-6).unwrap();
        let expect = 1.0 - (-2.0_f64).exp();
        assert!((r.final_voltage(b) - expect).abs() < 0.01);
    }

    #[test]
    fn inverter_switches_on_pulse() {
        use crate::mos::{MosModel, MosPolarity};
        let nmos = MosModel {
            polarity: MosPolarity::Nmos,
            vth0: 0.45,
            kp: 300e-6,
            clm: 0.02e-6,
            gamma: 0.4,
            phi: 0.8,
            nsub: 1.4,
            cox: 8.5e-3,
            cov: 3e-10,
            cj: 1e-3,
            ldiff: 0.4e-6,
            kf: 1e-26,
            af: 1.0,
            noise_gamma: 2.0 / 3.0,
        };
        let pmos = MosModel {
            polarity: MosPolarity::Pmos,
            kp: 80e-6,
            ..nmos.clone()
        };
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("VDD", vdd, GND, Waveform::Dc(1.8)).unwrap();
        c.add_vsource(
            "VIN",
            inp,
            GND,
            Waveform::pulse(0.0, 1.8, 1e-9, 50e-12, 50e-12, 5e-9, f64::INFINITY),
        )
        .unwrap();
        c.add_mosfet("MN", out, inp, GND, GND, &nmos, 2e-6, 0.18e-6, 1.0)
            .unwrap();
        c.add_mosfet("MP", out, inp, vdd, vdd, &pmos, 4e-6, 0.18e-6, 1.0)
            .unwrap();
        c.add_capacitor("CL", out, GND, 10e-15).unwrap();
        let r = transient(&c, &SimOptions::default(), 10e-9, 25e-12).unwrap();
        // Before the pulse, output is high; during the pulse, low.
        assert!(r.sample(out, 0.5e-9) > 1.7);
        assert!(r.sample(out, 4e-9) < 0.1);
        // After the input falls, the output recovers.
        assert!(r.sample(out, 9.5e-9) > 1.6);
    }

    #[test]
    fn vdd_current_and_charge_in_rc_charge() {
        // Charging C through R from a step source: total delivered charge
        // must equal C·ΔV.
        let mut c = Circuit::new();
        let a = c.node("in");
        let b = c.node("out");
        c.add_vsource(
            "V1",
            a,
            GND,
            Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, f64::INFINITY),
        )
        .unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_capacitor("C1", b, GND, 1e-6).unwrap();
        let r = transient(&c, &SimOptions::default(), 10e-3, 50e-6).unwrap();
        let q = r.delivered_charge(&c, "V1", 0.0, 10e-3).unwrap();
        assert!((q - 1e-6).abs() < 0.02e-6, "charge {q}");
    }

    #[test]
    fn sparse_kernel_matches_rc_physics_on_large_ladder() {
        // A 30-stage RC ladder (32 unknowns) drives the transient engine
        // down the sparse path; the far-end step response must still settle
        // to the source value (conservation through all 30 sections).
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add_vsource(
            "V1",
            vin,
            GND,
            Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, f64::INFINITY),
        )
        .unwrap();
        let mut prev = vin;
        for i in 0..30 {
            let node = c.node(&format!("n{i}"));
            c.add_resistor(&format!("R{i}"), prev, node, 10.0).unwrap();
            c.add_capacitor(&format!("C{i}"), node, GND, 1e-12).unwrap();
            prev = node;
        }
        let mut ws = crate::workspace::NewtonWorkspace::new(&c);
        let r =
            transient_with_workspace(&c, &SimOptions::default(), 50e-9, 100e-12, &mut ws).unwrap();
        assert!(ws.uses_sparse(true), "ladder must select the sparse path");
        // The line's slowest mode is ≈ R_tot·C_tot·(2/π)² ≈ 3.6 ns, so by
        // 50 ns the end of the line has settled to the source value.
        assert!(
            (r.final_voltage(prev) - 1.0).abs() < 0.01,
            "end of line at {}",
            r.final_voltage(prev)
        );
        // Charge conservation: everything the source delivered now sits on
        // the ladder capacitors (within integration tolerance).
        let q_src = r.delivered_charge(&c, "V1", 0.0, 50e-9).unwrap();
        let q_caps: f64 = (0..30)
            .map(|i| 1e-12 * r.final_voltage(c.find_node(&format!("n{i}")).unwrap()))
            .sum();
        assert!(
            (q_src - q_caps).abs() < 0.02 * q_caps.abs(),
            "q_src={q_src} q_caps={q_caps}"
        );
        // The wavefront is ordered: upstream nodes lead downstream ones.
        let mid = c.find_node("n15").unwrap();
        assert!(r.sample(mid, 2e-9) >= r.sample(prev, 2e-9) - 1e-9);
    }

    /// A MOS-loaded ladder (sparse path, split assembly) must give the same
    /// bits on a pooled re-run: the constant-slot preload is refreshed per
    /// timestep and never leaks state between runs.
    #[test]
    fn split_transient_is_bit_reproducible_across_workspace_reuse() {
        use crate::mos::{MosModel, MosPolarity};
        let m = MosModel {
            polarity: MosPolarity::Nmos,
            vth0: 0.45,
            kp: 300e-6,
            clm: 0.02e-6,
            gamma: 0.4,
            phi: 0.8,
            nsub: 1.4,
            cox: 8.5e-3,
            cov: 3e-10,
            cj: 1e-3,
            ldiff: 0.4e-6,
            kf: 1e-26,
            af: 1.0,
            noise_gamma: 2.0 / 3.0,
        };
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        c.add_vsource(
            "VDD",
            vdd,
            GND,
            Waveform::pulse(0.0, 1.8, 0.5e-9, 0.1e-9, 0.1e-9, 20e-9, f64::INFINITY),
        )
        .unwrap();
        let mut prev = vdd;
        for i in 0..24 {
            let d = c.node(&format!("d{i}"));
            c.add_resistor(&format!("R{i}"), prev, d, 5e3).unwrap();
            c.add_mosfet(&format!("M{i}"), d, d, GND, GND, &m, 4e-6, 0.5e-6, 1.0)
                .unwrap();
            c.add_capacitor(&format!("C{i}"), d, GND, 2e-15).unwrap();
            prev = d;
        }
        let mut ws = crate::workspace::NewtonWorkspace::new(&c);
        let opts = SimOptions::default();
        let r1 = transient_with_workspace(&c, &opts, 5e-9, 50e-12, &mut ws).unwrap();
        assert!(ws.uses_sparse(true), "ladder must select the sparse path");
        let r2 = transient_with_workspace(&c, &opts, 5e-9, 50e-12, &mut ws).unwrap();
        assert_eq!(r1.len(), r2.len());
        for i in 0..r1.len() {
            for n in 0..c.num_nodes() {
                assert_eq!(
                    r1.voltage(i, n).to_bits(),
                    r2.voltage(i, n).to_bits(),
                    "step {i} node {n}"
                );
            }
        }
    }

    #[test]
    fn sample_interpolates_and_clamps() {
        let r = TranResult {
            t: vec![0.0, 1.0, 2.0],
            v: vec![vec![0.0, 0.0], vec![0.0, 2.0], vec![0.0, 4.0]],
            branch: vec![vec![], vec![], vec![]],
        };
        assert_eq!(r.sample(1, 0.5), 1.0);
        assert_eq!(r.sample(1, -1.0), 0.0);
        assert_eq!(r.sample(1, 3.0), 4.0);
        assert_eq!(r.final_voltage(1), 4.0);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, GND, Waveform::Dc(1.0)).unwrap();
        c.add_resistor("R1", a, GND, 1e3).unwrap();
        let opts = SimOptions::default();
        assert!(transient(&c, &opts, 0.0, 1e-9).is_err());
        assert!(transient(&c, &opts, 1e-9, 1e-6).is_err());
    }

    #[test]
    fn breakpoints_are_not_skipped() {
        // A 1 ns pulse inside a 1 ms window with a 100 µs base step would be
        // invisible without breakpoint clipping.
        let mut c = Circuit::new();
        let a = c.node("in");
        c.add_vsource(
            "V1",
            a,
            GND,
            Waveform::pulse(0.0, 1.0, 0.5e-3, 1e-9, 1e-9, 1e-9, f64::INFINITY),
        )
        .unwrap();
        c.add_resistor("R1", a, GND, 1e3).unwrap();
        let r = transient(&c, &SimOptions::default(), 1e-3, 100e-6).unwrap();
        let peak = r.waveform(a).iter().map(|&(_, v)| v).fold(0.0, f64::max);
        assert!(peak > 0.99, "pulse was skipped: peak {peak}");
    }
}
