//! Cache-blocked dense GEMM engine with register-tiled micro-kernels.
//!
//! One entry point, [`gemm`] (and its epilogue-fusing sibling
//! [`gemm_with`]), covers every matrix-product shape the workspace needs:
//! `C := α·op(A)·op(B) + β·C` with independent transposition selectors for
//! both operands, so the NN/NT/TN products of an MLP's forward and backward
//! passes all run through the same kernel.
//!
//! # Blocking scheme
//!
//! The implementation follows the classic Goto/BLIS decomposition:
//!
//! - the output is processed in `NC`-wide column blocks;
//! - each column block accumulates over `KC`-deep panels of the inner
//!   dimension; the `KC × NC` slice of `op(B)` is packed once per panel
//!   into [`GemmWorkspace::pack_b`], laid out in `NR`-column micro-panels;
//! - inside a panel, `MC`-tall row blocks of `op(A)` are packed into
//!   [`GemmWorkspace::pack_a`] as `MR`-row micro-panels;
//! - a register-tiled micro-kernel then computes `MR × NR` output tiles
//!   (`4 × 8` f64 accumulators) from the two packed panels, walking both
//!   with stride-1 loads and no transposition logic in the inner loop.
//!
//! Packing handles both transposition and edge padding (partial tiles are
//! zero-padded to full `MR`/`NR` width), so the micro-kernel is a single
//! branch-free loop. On x86-64 hosts with AVX2+FMA a fused-multiply-add
//! variant of the micro-kernel is selected once per process; everywhere
//! else a portable scalar-tiled kernel runs. Small products (`m·n·k ≤`
//! [`GEMM_NAIVE_CUTOFF`]) skip the packing machinery entirely and use the
//! naive reference kernel, which is also exposed as [`gemm_naive`] for
//! differential testing.
//!
//! # Threading
//!
//! Products with `m·n·k ≥` [`GEMM_PARALLEL_MIN_WORK`] run on the shared
//! [`crate::pool`] when its two-level budget allows (the evaluation grid
//! is idle and the caller is not itself a pool worker — see
//! [`crate::pool::gemm_threads`]). The split is **static**: the output's
//! `MR`-row (or `NR`-column, whichever dimension has more tiles) tile
//! index space is divided into one contiguous, tile-aligned range per
//! thread by a pure function of (shape, thread count); each thread packs
//! its own operand panels and computes its own disjoint output tiles.
//! There is no work queue, no stealing, and no atomics or reductions
//! anywhere in the floating-point path.
//!
//! # Determinism
//!
//! The tiling is fixed (compile-time `MC`/`KC`/`NC`/`MR`/`NR`) and the
//! per-element accumulation order depends only on the operand shapes —
//! never on thread count or scheduling — so repeated calls are
//! bit-identical on a given host. Because the thread split above is
//! tile-aligned, every thread sees exactly the tiles (and the `KC`-panel
//! accumulation sequence per element) that the serial kernel would
//! produce, so the threaded path is bit-identical to the serial one at
//! any thread count. The FMA and portable micro-kernels may differ in
//! final-bit rounding (fused vs separate multiply-add), but the selection
//! is constant for the lifetime of the process.
//!
//! # Epilogues
//!
//! [`gemm_with`] applies an [`Epilogue`] to every finished output element
//! exactly once, after all `KC`-panel contributions have accumulated. This
//! is how the NN crate fuses bias-add + activation into the forward GEMM
//! and the activation-derivative product into the backward GEMM without an
//! extra pass over the output.

use crate::Matrix;

/// Transposition selector for a [`gemm`] operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmOp {
    /// Use the operand as stored.
    NoTrans,
    /// Use the operand's transpose (without materializing it).
    Trans,
}

impl GemmOp {
    /// Effective `(rows, cols)` of `m` under this op.
    fn dims(self, m: &Matrix) -> (usize, usize) {
        match self {
            GemmOp::NoTrans => (m.rows(), m.cols()),
            GemmOp::Trans => (m.cols(), m.rows()),
        }
    }
}

/// A fused output transformation applied by [`gemm_with`].
///
/// `apply` is called exactly once per output element, after the element's
/// value is final, as `apply(row, col0, seg)` where `seg` is the contiguous
/// slice `c[row][col0 .. col0 + seg.len()]`. Implementations must treat the
/// call element-wise (the segmentation — full rows for the naive kernel,
/// `NC`-wide column blocks for the blocked kernel — is not part of the
/// contract).
pub trait Epilogue {
    /// Transforms one finished output-row segment in place.
    fn apply(&mut self, row: usize, col0: usize, seg: &mut [f64]);
}

/// The identity epilogue of plain [`gemm`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoEpilogue;

impl Epilogue for NoEpilogue {
    #[inline]
    fn apply(&mut self, _row: usize, _col0: usize, _seg: &mut [f64]) {}
}

/// Reusable packing buffers for the blocked kernel. One workspace serves
/// any sequence of [`gemm`] calls; the buffers grow to the largest panel
/// seen and are reused allocation-free afterwards.
#[derive(Debug, Clone, Default)]
pub struct GemmWorkspace {
    /// `MC × KC` panel of `op(A)`, packed in `MR`-row micro-panels.
    pack_a: Vec<f64>,
    /// `KC × NC` panel of `op(B)`, packed in `NR`-column micro-panels.
    pack_b: Vec<f64>,
}

impl GemmWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Micro-kernel tile height (rows of `C` per register tile).
const MR: usize = 4;
/// Micro-kernel tile width (columns of `C` per register tile).
const NR: usize = 8;
/// Row-panel height: rows of `op(A)` packed per inner block.
const MC: usize = 128;
/// Depth of one packed panel of the inner dimension.
const KC: usize = 256;
/// Column-block width of the outermost loop.
const NC: usize = 4096;

/// `m·n·k` at or below which [`gemm`] runs the naive reference kernel
/// instead of the blocked one (packing overhead dominates tiny products).
pub const GEMM_NAIVE_CUTOFF: usize = 4096;

/// `m·n·k` below which the blocked kernel stays serial even when the
/// thread budget would allow more: dispatch + duplicated packing overhead
/// beats the speedup on small products. At or above it, [`gemm`] splits
/// the output's larger tile dimension across the shared [`crate::pool`]
/// (results stay bit-identical — see the module docs).
pub const GEMM_PARALLEL_MIN_WORK: usize = 65_536;

/// General matrix multiply `C := α·op(A)·op(B) + β·C`.
///
/// With `beta == 0.0` the output matrix is reshaped to fit (reusing its
/// allocation) and the old contents are ignored entirely — `C` may be a
/// default-constructed buffer. With `beta != 0.0` the output must already
/// have the product's shape.
///
/// # Panics
///
/// Panics if the effective inner dimensions disagree, or if `beta != 0.0`
/// and `C` has the wrong shape.
#[allow(clippy::too_many_arguments)] // the canonical BLAS dgemm signature
pub fn gemm(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    ws: &mut GemmWorkspace,
) {
    gemm_with(op_a, op_b, alpha, a, b, beta, c, ws, &mut NoEpilogue);
}

/// [`gemm`] with a fused [`Epilogue`] applied to every finished output
/// element (bias-add, activation, elementwise products — anything that
/// would otherwise need a second pass over `C`).
///
/// # Panics
///
/// Same conditions as [`gemm`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_with<E: Epilogue>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    ws: &mut GemmWorkspace,
    epilogue: &mut E,
) {
    debug_assert_finite_operand(a, "A");
    debug_assert_finite_operand(b, "B");
    let (m, n, k) = checked_dims(op_a, op_b, a, b);
    prepare_output(beta, m, n, c);
    if m * n * k <= GEMM_NAIVE_CUTOFF {
        naive_body(op_a, op_b, alpha, a, b, beta, c, epilogue, (m, n, k));
    } else {
        blocked_body(op_a, op_b, alpha, a, b, beta, c, ws, epilogue, (m, n, k));
    }
}

/// The naive reference kernel: straight i-j-k triple loops with the same
/// `C := α·op(A)·op(B) + β·C` semantics as [`gemm`]. Used as the
/// ground truth of the differential property tests and by [`gemm`] itself
/// below [`GEMM_NAIVE_CUTOFF`].
///
/// # Panics
///
/// Same conditions as [`gemm`].
pub fn gemm_naive(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    gemm_naive_with(op_a, op_b, alpha, a, b, beta, c, &mut NoEpilogue);
}

/// [`gemm_naive`] with a fused [`Epilogue`] — the reference implementation
/// of the epilogue contract.
///
/// # Panics
///
/// Same conditions as [`gemm`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive_with<E: Epilogue>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    epilogue: &mut E,
) {
    let (m, n, k) = checked_dims(op_a, op_b, a, b);
    prepare_output(beta, m, n, c);
    naive_body(op_a, op_b, alpha, a, b, beta, c, epilogue, (m, n, k));
}

/// Effective `(m, n, k)` of the product, with the inner-dimension check.
fn checked_dims(op_a: GemmOp, op_b: GemmOp, a: &Matrix, b: &Matrix) -> (usize, usize, usize) {
    let (m, ka) = op_a.dims(a);
    let (kb, n) = op_b.dims(b);
    assert_eq!(ka, kb, "inner dimensions must agree");
    (m, n, ka)
}

/// Shapes (or shape-checks) the output for the accumulation. With
/// `beta == 0` the old contents are never read — the naive kernel assigns
/// every element and the blocked kernel's first `KC` panel *stores* instead
/// of accumulating — so the reshape skips the memset.
fn prepare_output(beta: f64, m: usize, n: usize, c: &mut Matrix) {
    if beta == 0.0 {
        c.reshape_for_overwrite(m, n);
    } else {
        assert_eq!(
            (c.rows(), c.cols()),
            (m, n),
            "output shape mismatch for beta != 0"
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn naive_body<E: Epilogue>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    epilogue: &mut E,
    (m, n, k): (usize, usize, usize),
) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                let av = match op_a {
                    GemmOp::NoTrans => a[(i, p)],
                    GemmOp::Trans => a[(p, i)],
                };
                let bv = match op_b {
                    GemmOp::NoTrans => b[(p, j)],
                    GemmOp::Trans => b[(j, p)],
                };
                s += av * bv;
            }
            // beta == 0 must ignore the old contents entirely (they may be
            // stale or non-finite), not multiply them by zero.
            let prev = if beta == 0.0 { 0.0 } else { beta * c[(i, j)] };
            c[(i, j)] = alpha * s + prev;
        }
        epilogue.apply(i, 0, c.row_mut(i));
    }
}

/// Raw mutable base pointer into `C`'s storage, shared across the threads
/// of one parallel product. Each thread writes a disjoint, statically
/// assigned set of output elements (see [`plan_threads`]), so the shared
/// mutable access is race-free.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);

impl SendPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw pointer field.
    fn get(self) -> *mut f64 {
        self.0
    }
}

// SAFETY: the pointer is only ever dereferenced on disjoint element sets
// per thread (the tile split is a partition), and the owning `Matrix`
// outlives the dispatch.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

thread_local! {
    /// Packing buffers for parallel products: each participating thread
    /// (including the caller running slot 0) packs into its own
    /// thread-local workspace, reused allocation-free across dispatches.
    static PARALLEL_WS: std::cell::RefCell<GemmWorkspace> =
        std::cell::RefCell::new(GemmWorkspace::new());
}

/// The static thread split for an `m × n` (inner `k`) product: how many
/// threads to use and whether to split the `MR`-row or `NR`-column tile
/// dimension. A pure function of (shape, thread budget) — never of load
/// or timing — so the partition is reproducible.
fn plan_threads(m: usize, n: usize, k: usize) -> (usize, bool) {
    if m.saturating_mul(n).saturating_mul(k) < GEMM_PARALLEL_MIN_WORK {
        return (1, true);
    }
    let budget = crate::pool::gemm_threads();
    if budget <= 1 {
        return (1, true);
    }
    let row_tiles = m.div_ceil(MR);
    let col_tiles = n.div_ceil(NR);
    let split_rows = row_tiles >= col_tiles;
    let tiles = if split_rows { row_tiles } else { col_tiles };
    (budget.min(tiles), split_rows)
}

/// Contiguous tile range owned by `slot` out of `threads`: the first
/// `tiles % threads` slots get one extra tile. Returned as an element
/// range clamped to `limit`, with every interior boundary tile-aligned.
fn slot_range(
    slot: usize,
    threads: usize,
    tiles: usize,
    tile: usize,
    limit: usize,
) -> (usize, usize) {
    let base = tiles / threads;
    let rem = tiles % threads;
    let t0 = slot * base + slot.min(rem);
    let t1 = t0 + base + usize::from(slot < rem);
    ((t0 * tile).min(limit), (t1 * tile).min(limit))
}

#[allow(clippy::too_many_arguments)]
fn blocked_body<E: Epilogue>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    ws: &mut GemmWorkspace,
    epilogue: &mut E,
    (m, n, k): (usize, usize, usize),
) {
    let kernel = select_micro_kernel();
    let ccols = c.cols();
    let (threads, split_rows) = plan_threads(m, n, k);
    // Telemetry (one gate check when off): flops and split width for every
    // blocked product, a `gemm` span only at or above the parallel work
    // cutoff so traced training loops don't drown in micro-product events.
    let work = m.saturating_mul(n).saturating_mul(k);
    let _span = if telemetry::enabled() {
        telemetry::record(telemetry::Metric::GemmFlops, 2 * work as u64);
        if threads > 1 {
            telemetry::record(telemetry::Metric::GemmSplitWidth, threads as u64);
        }
        (work >= GEMM_PARALLEL_MIN_WORK)
            .then(|| telemetry::span_with(telemetry::SpanId::Gemm, threads as u64))
    } else {
        None
    };
    if threads <= 1 {
        // SAFETY: exclusive access to all of `C` through its own base
        // pointer; the region covers exactly the output.
        unsafe {
            compute_region(
                op_a,
                op_b,
                alpha,
                a,
                b,
                beta,
                c.as_mut_slice().as_mut_ptr(),
                ccols,
                ws,
                0..m,
                0..n,
                k,
                kernel,
            );
        }
    } else {
        let cbase = SendPtr(c.as_mut_slice().as_mut_ptr());
        let (tiles, tile, limit) = if split_rows {
            (m.div_ceil(MR), MR, m)
        } else {
            (n.div_ceil(NR), NR, n)
        };
        crate::pool::run(threads, &|slot| {
            let (e0, e1) = slot_range(slot, threads, tiles, tile, limit);
            let (rows, cols) = if split_rows {
                (e0..e1, 0..n)
            } else {
                (0..m, e0..e1)
            };
            PARALLEL_WS.with(|cell| {
                let mut ws = cell.borrow_mut();
                // SAFETY: slot ranges partition the tile index space, so
                // every output element is written by exactly one thread;
                // boundaries are tile-aligned, keeping per-element
                // arithmetic identical to the serial kernel.
                unsafe {
                    compute_region(
                        op_a,
                        op_b,
                        alpha,
                        a,
                        b,
                        beta,
                        cbase.get(),
                        ccols,
                        &mut ws,
                        rows,
                        cols,
                        k,
                        kernel,
                    );
                }
            });
        });
    }
    // All panels of every region have accumulated: the elements are
    // final, so the fused epilogue runs now (serially, in row order).
    for i in 0..m {
        epilogue.apply(i, 0, c.row_mut(i));
    }
}

/// The serial Goto loop nest over one rectangular region of the output:
/// `NC`-column blocks × `KC`-depth panels × `MC`-row blocks, packing from
/// `ws` and merging through the micro-kernel. The epilogue is *not*
/// applied here — callers run it once the whole output is final.
///
/// # Safety
///
/// `cbase` must point to the start of a `rows.end × ccols` (at least)
/// row-major buffer, and no other thread may concurrently access the
/// `rows × cols` region. For bit-identity with the serial kernel,
/// `rows.start` must be `MR`-aligned and `cols.start` `NR`-aligned.
#[allow(clippy::too_many_arguments)]
unsafe fn compute_region(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    cbase: *mut f64,
    ccols: usize,
    ws: &mut GemmWorkspace,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    k: usize,
    kernel: MicroKernel,
) {
    let mut jc = cols.start;
    while jc < cols.end {
        let nc = NC.min(cols.end - jc);
        // One beta pass per column block. beta == 0 needs none: the output
        // holds stale values (`prepare_output` skips the memset), and the
        // first KC panel below *stores* its tiles instead of accumulating,
        // overwriting every element. beta == 1 accumulates as-is.
        if beta != 0.0 && beta != 1.0 {
            for i in rows.clone() {
                // SAFETY: row `i` and columns `jc..jc + nc` are inside the
                // caller-guaranteed exclusive region.
                let row = unsafe { std::slice::from_raw_parts_mut(cbase.add(i * ccols + jc), nc) };
                for v in row {
                    *v *= beta;
                }
            }
        }
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            // The first panel of a beta == 0 product *stores* its tiles
            // (the stale output is never read); later panels accumulate.
            let store = beta == 0.0 && pc == 0;

            pack_b(op_b, b, pc, kc, jc, nc, &mut ws.pack_b);
            let mut ic = rows.start;
            while ic < rows.end {
                let mc = MC.min(rows.end - ic);
                pack_a(op_a, a, ic, mc, pc, kc, &mut ws.pack_a);
                // SAFETY: the `mc × nc` block at `(ic, jc)` lies inside
                // the caller-guaranteed exclusive region.
                unsafe {
                    macro_kernel(
                        alpha,
                        (mc, nc, kc),
                        &ws.pack_a,
                        &ws.pack_b,
                        cbase,
                        ccols,
                        ic,
                        jc,
                        kernel,
                        store,
                    );
                }
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// A pre-packed right-hand operand for [`gemm_prepacked_with`]: the
/// `NR`-column micro-panel layout of a *single* `KC × NC` panel, computed
/// once and reused across many products. The fast path for frozen weight
/// matrices (e.g. the DNN-Opt critic inside the actor's training loop),
/// whose panels would otherwise be re-packed on every call.
#[derive(Debug, Clone, Default)]
pub struct PackedB {
    data: Vec<f64>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Effective inner dimension of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Effective column count of the packed operand.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packs `op(B)` when it fits a single panel, `None` otherwise (the
    /// caller falls back to the on-the-fly path).
    pub fn try_pack(op_b: GemmOp, b: &Matrix) -> Option<PackedB> {
        let (k, n) = op_b.dims(b);
        if k > KC || n > NC {
            return None;
        }
        let mut out = PackedB::default();
        pack_b_into(op_b, b, &mut out);
        Some(out)
    }
}

/// Debug-build quarantine tripwire: a NaN or ∞ entering a GEMM operand
/// silently poisons every downstream weight, so in debug builds every
/// entry point rejects non-finite operands outright. The failure-penalty
/// mapping upstream (see `opt::FAILURE_PENALTY`) is supposed to make this
/// unreachable; release builds pay nothing.
#[inline]
fn debug_assert_finite_operand(m: &Matrix, name: &str) {
    if cfg!(debug_assertions) {
        for i in 0..m.rows() {
            for (j, v) in m.row(i).iter().enumerate() {
                debug_assert!(
                    v.is_finite(),
                    "non-finite value {v} in GEMM operand {name} at ({i}, {j})"
                );
            }
        }
    }
}

/// Packs `op(B)` into `out` for reuse with [`gemm_prepacked_with`]. The
/// layout is identical to the per-call packing of [`gemm`], so prepacked
/// products are bit-identical to blocked on-the-fly ones.
///
/// # Panics
///
/// Panics if the effective dimensions exceed one panel (`k > KC` or
/// `n > NC`) — multi-panel operands must use the on-the-fly path.
pub fn pack_b_into(op_b: GemmOp, b: &Matrix, out: &mut PackedB) {
    debug_assert_finite_operand(b, "packed B");
    let (k, n) = op_b.dims(b);
    assert!(
        k <= KC && n <= NC,
        "pack_b_into supports single-panel operands only (k ≤ {KC}, n ≤ {NC})"
    );
    pack_b(op_b, b, 0, k, 0, n, &mut out.data);
    out.k = k;
    out.n = n;
}

/// `C := α·op(A)·B + β·C` with a pre-packed right operand: identical
/// result bits to the blocked [`gemm`] on the same operands, minus the
/// per-call packing of `B`.
///
/// # Panics
///
/// Panics if the inner dimensions disagree, or if `beta != 0.0` and `C`
/// has the wrong shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_prepacked_with<E: Epilogue>(
    op_a: GemmOp,
    alpha: f64,
    a: &Matrix,
    b: &PackedB,
    beta: f64,
    c: &mut Matrix,
    ws: &mut GemmWorkspace,
    epilogue: &mut E,
) {
    debug_assert_finite_operand(a, "A");
    let (m, ka) = op_a.dims(a);
    let (k, n) = (b.k, b.n);
    assert_eq!(ka, k, "inner dimensions must agree");
    prepare_output(beta, m, n, c);
    if m == 0 || n == 0 {
        return;
    }
    let kernel = select_micro_kernel();
    let store = beta == 0.0;
    let ccols = c.cols();
    // The packed operand is a single panel (k ≤ KC), so a region here is
    // just the MC-row loop; rows split across threads exactly like the
    // on-the-fly path (the prepacked B panel is shared, never re-packed).
    let row_region = |cbase: *mut f64, ws: &mut GemmWorkspace, rows: std::ops::Range<usize>| {
        if beta != 0.0 && beta != 1.0 {
            for i in rows.clone() {
                // SAFETY: row `i` is inside the caller's exclusive range.
                let row = unsafe { std::slice::from_raw_parts_mut(cbase.add(i * ccols), n) };
                for v in row {
                    *v *= beta;
                }
            }
        }
        let mut ic = rows.start;
        while ic < rows.end {
            let mc = MC.min(rows.end - ic);
            pack_a(op_a, a, ic, mc, 0, k, &mut ws.pack_a);
            // SAFETY: the `mc × n` block at row `ic` is inside the
            // caller's exclusive range.
            unsafe {
                macro_kernel(
                    alpha,
                    (mc, n, k),
                    &ws.pack_a,
                    &b.data,
                    cbase,
                    ccols,
                    ic,
                    0,
                    kernel,
                    store,
                );
            }
            ic += MC;
        }
    };
    let (threads, _) = plan_threads(m, n, k);
    // Row split only: prepacked products always share the one B panel.
    let threads = threads.min(m.div_ceil(MR));
    // Same telemetry as the on-the-fly blocked path.
    let work = m.saturating_mul(n).saturating_mul(k);
    let _span = if telemetry::enabled() {
        telemetry::record(telemetry::Metric::GemmFlops, 2 * work as u64);
        if threads > 1 {
            telemetry::record(telemetry::Metric::GemmSplitWidth, threads as u64);
        }
        (work >= GEMM_PARALLEL_MIN_WORK)
            .then(|| telemetry::span_with(telemetry::SpanId::Gemm, threads as u64))
    } else {
        None
    };
    if threads <= 1 {
        row_region(c.as_mut_slice().as_mut_ptr(), ws, 0..m);
    } else {
        let cbase = SendPtr(c.as_mut_slice().as_mut_ptr());
        let tiles = m.div_ceil(MR);
        crate::pool::run(threads, &|slot| {
            let (r0, r1) = slot_range(slot, threads, tiles, MR, m);
            PARALLEL_WS.with(|cell| {
                row_region(cbase.get(), &mut cell.borrow_mut(), r0..r1);
            });
        });
    }
    for i in 0..m {
        epilogue.apply(i, 0, c.row_mut(i));
    }
}

/// Packs the `mc × kc` block of `op(A)` at `(ic, pc)` into `MR`-row
/// micro-panels: panel `t` holds rows `ic + t·MR ..`, laid out so the
/// micro-kernel reads `buf[t·kc·MR + p·MR + r]` with stride-1 `p` walks.
/// Partial edge panels are zero-padded to full `MR` height.
fn pack_a(op: GemmOp, a: &Matrix, ic: usize, mc: usize, pc: usize, kc: usize, buf: &mut Vec<f64>) {
    let tiles = mc.div_ceil(MR);
    let need = tiles * kc * MR;
    if buf.len() < need {
        buf.resize(need, 0.0);
    }
    for t in 0..tiles {
        let base = t * kc * MR;
        let mr = MR.min(mc - t * MR);
        match op {
            GemmOp::NoTrans => {
                for r in 0..mr {
                    let row = &a.row(ic + t * MR + r)[pc..pc + kc];
                    for (p, &v) in row.iter().enumerate() {
                        buf[base + p * MR + r] = v;
                    }
                }
            }
            GemmOp::Trans => {
                // Effective A[i][p] = a[p][i]: each source row is one `p`.
                for p in 0..kc {
                    let src = &a.row(pc + p)[ic + t * MR..ic + t * MR + mr];
                    buf[base + p * MR..base + p * MR + mr].copy_from_slice(src);
                }
            }
        }
        // Zero only the padding lanes of a partial edge tile (the buffer is
        // reused across calls and may hold stale values there).
        for p in 0..kc {
            for r in mr..MR {
                buf[base + p * MR + r] = 0.0;
            }
        }
    }
}

/// Packs the `kc × nc` block of `op(B)` at `(pc, jc)` into `NR`-column
/// micro-panels (`buf[u·kc·NR + p·NR + j]`), zero-padding partial edge
/// panels to full `NR` width.
fn pack_b(op: GemmOp, b: &Matrix, pc: usize, kc: usize, jc: usize, nc: usize, buf: &mut Vec<f64>) {
    let tiles = nc.div_ceil(NR);
    let need = tiles * kc * NR;
    if buf.len() < need {
        buf.resize(need, 0.0);
    }
    for u in 0..tiles {
        let base = u * kc * NR;
        let nr = NR.min(nc - u * NR);
        match op {
            GemmOp::NoTrans => {
                for p in 0..kc {
                    let src = &b.row(pc + p)[jc + u * NR..jc + u * NR + nr];
                    buf[base + p * NR..base + p * NR + nr].copy_from_slice(src);
                }
            }
            GemmOp::Trans => {
                // Effective B[p][j] = b[j][p]: each source row is one `j`.
                for j in 0..nr {
                    let src = &b.row(jc + u * NR + j)[pc..pc + kc];
                    for (p, &v) in src.iter().enumerate() {
                        buf[base + p * NR + j] = v;
                    }
                }
            }
        }
        // Zero only the padding lanes of a partial edge tile.
        for p in 0..kc {
            for j in nr..NR {
                buf[base + p * NR + j] = 0.0;
            }
        }
    }
}

/// Runs the register-tiled micro-kernel over every `MR × NR` tile of the
/// packed `mc × nc` block and merges `α`-scaled results into the output
/// (`store` replaces instead of accumulating — the first-panel fast path).
///
/// # Safety
///
/// `cbase` must point to the start of a row-major buffer of row length
/// `ccols` covering at least rows `ic..ic + mc` and columns
/// `jc..jc + nc`, with no concurrent access to that block from any other
/// thread.
#[allow(clippy::too_many_arguments)]
unsafe fn macro_kernel(
    alpha: f64,
    (mc, nc, kc): (usize, usize, usize),
    pack_a: &[f64],
    pack_b: &[f64],
    cbase: *mut f64,
    ccols: usize,
    ic: usize,
    jc: usize,
    kernel: MicroKernel,
    store: bool,
) {
    let row_tiles = mc.div_ceil(MR);
    let col_tiles = nc.div_ceil(NR);
    for u in 0..col_tiles {
        let jr = u * NR;
        let nr = NR.min(nc - jr);
        let bp = &pack_b[u * kc * NR..(u + 1) * kc * NR];
        for t in 0..row_tiles {
            let ir = t * MR;
            let mr = MR.min(mc - ir);
            let ap = &pack_a[t * kc * MR..(t + 1) * kc * MR];
            #[cfg(target_arch = "x86_64")]
            if kernel == MicroKernel::Fma && mr == MR && nr == NR {
                // Full tile on the FMA kernel: accumulate in registers and
                // write α-scaled results straight into C — no stack
                // spill + separate writeback pass. Identical arithmetic to
                // the buffered path below.
                // SAFETY: rows ic+ir .. ic+ir+MR and columns jc+jr .. +NR
                // are in bounds (full tile), and the FMA features were
                // detected at selection time.
                unsafe {
                    let dst = cbase.add((ic + ir) * ccols + jc + jr);
                    micro_kernel_fma_direct(ap, bp, dst, ccols, alpha, store);
                }
                continue;
            }
            let mut acc = [[0.0f64; NR]; MR];
            run_micro_kernel(ap, bp, &mut acc, kernel);
            for r in 0..mr {
                // SAFETY: row ic+ir+r, columns jc+jr .. +nr are inside the
                // caller-guaranteed exclusive block.
                let crow = unsafe {
                    std::slice::from_raw_parts_mut(cbase.add((ic + ir + r) * ccols + jc + jr), nr)
                };
                if store {
                    for (cv, &av) in crow.iter_mut().zip(&acc[r][..nr]) {
                        *cv = alpha * av;
                    }
                } else {
                    for (cv, &av) in crow.iter_mut().zip(&acc[r][..nr]) {
                        *cv += alpha * av;
                    }
                }
            }
        }
    }
}

/// Which micro-kernel implementation the host runs. Selected once per
/// process, so the accumulation arithmetic is fixed for every call; the
/// two fused variants produce bit-identical results (both use exactly
/// rounded fused multiply-adds in the same order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MicroKernel {
    /// 256-bit fused multiply-add tiles.
    #[cfg(target_arch = "x86_64")]
    Fma,
    /// Portable scalar-tiled kernel (separate multiply and add).
    Reference,
}

/// Dispatches one `MR × NR` tile to the selected kernel.
#[inline]
fn run_micro_kernel(ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR], kernel: MicroKernel) {
    match kernel {
        // SAFETY: the variant is only constructed when AVX2+FMA were
        // detected at runtime (see `select_micro_kernel`).
        #[cfg(target_arch = "x86_64")]
        MicroKernel::Fma => unsafe { micro_kernel_fma(ap, bp, acc) },
        MicroKernel::Reference => micro_kernel_ref(ap, bp, acc),
    }
}

/// Portable micro-kernel: `MR × NR` independent accumulator chains, one
/// multiply-add per packed element pair. The `NR`-wide inner loop has no
/// cross-lane dependencies, so it auto-vectorizes on any SIMD width.
#[inline]
fn micro_kernel_ref(ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (accr, &a) in acc.iter_mut().zip(av) {
            for (cv, &b) in accr.iter_mut().zip(bv) {
                *cv += a * b;
            }
        }
    }
}

/// AVX2+FMA micro-kernel: the same arithmetic as [`micro_kernel_ref`] with
/// exactly rounded fused multiply-adds, written with explicit 256-bit
/// intrinsics — each tile row is two `ymm` accumulators, so every packed
/// `A` element costs one broadcast and two FMAs. (The autovectorizer
/// leaves the equivalent safe loop as 32 scalar FMAs, which measured ~2×
/// slower.)
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_kernel_fma(ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    use core::arch::x86_64::*;
    const { assert!(NR == 8, "kernel is written for 8-wide (two ymm) tiles") };
    // SAFETY: the packed panels hold `kc` complete `MR`/`NR` chunks and
    // each acc row is exactly NR = 8 doubles (two ymm registers).
    unsafe {
        let mut c: [[__m256d; 2]; MR] = [[_mm256_setzero_pd(); 2]; MR];
        for (cr, accr) in c.iter_mut().zip(acc.iter()) {
            cr[0] = _mm256_loadu_pd(accr.as_ptr());
            cr[1] = _mm256_loadu_pd(accr.as_ptr().add(4));
        }
        let kc = bp.len() / NR;
        for p in 0..kc {
            let b0 = _mm256_loadu_pd(bp.as_ptr().add(p * NR));
            let b1 = _mm256_loadu_pd(bp.as_ptr().add(p * NR + 4));
            let a = ap.as_ptr().add(p * MR);
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_pd(*a.add(r));
                cr[0] = _mm256_fmadd_pd(av, b0, cr[0]);
                cr[1] = _mm256_fmadd_pd(av, b1, cr[1]);
            }
        }
        for (cr, accr) in c.iter().zip(acc.iter_mut()) {
            _mm256_storeu_pd(accr.as_mut_ptr(), cr[0]);
            _mm256_storeu_pd(accr.as_mut_ptr().add(4), cr[1]);
        }
    }
}

/// Full-tile FMA micro-kernel writing `α`-scaled results directly into
/// `C` (`dst` = `&mut c[i0][j0]`, rows `row_stride` apart): accumulates in
/// registers from zero and skips the stack-buffer round trip of the
/// buffered path. Same multiplies/adds in the same order, so the output
/// bits match the buffered FMA path exactly.
///
/// # Safety
///
/// Requires AVX2+FMA, `MR` full rows of `NR` elements at `dst`, and packed
/// panels holding complete `MR`/`NR` chunks.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_kernel_fma_direct(
    ap: &[f64],
    bp: &[f64],
    dst: *mut f64,
    row_stride: usize,
    alpha: f64,
    store: bool,
) {
    use core::arch::x86_64::*;
    const { assert!(NR == 8, "kernel is written for 8-wide (two ymm) tiles") };
    unsafe {
        let mut c: [[__m256d; 2]; MR] = [[_mm256_setzero_pd(); 2]; MR];
        let kc = bp.len() / NR;
        for p in 0..kc {
            let b0 = _mm256_loadu_pd(bp.as_ptr().add(p * NR));
            let b1 = _mm256_loadu_pd(bp.as_ptr().add(p * NR + 4));
            let a = ap.as_ptr().add(p * MR);
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_pd(*a.add(r));
                cr[0] = _mm256_fmadd_pd(av, b0, cr[0]);
                cr[1] = _mm256_fmadd_pd(av, b1, cr[1]);
            }
        }
        let va = _mm256_set1_pd(alpha);
        for (r, cr) in c.iter().enumerate() {
            let row = dst.add(r * row_stride);
            let lo = _mm256_mul_pd(va, cr[0]);
            let hi = _mm256_mul_pd(va, cr[1]);
            if store {
                _mm256_storeu_pd(row, lo);
                _mm256_storeu_pd(row.add(4), hi);
            } else {
                _mm256_storeu_pd(row, _mm256_add_pd(_mm256_loadu_pd(row), lo));
                _mm256_storeu_pd(row.add(4), _mm256_add_pd(_mm256_loadu_pd(row.add(4)), hi));
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn select_micro_kernel() -> MicroKernel {
    use std::sync::OnceLock;
    static SELECTED: OnceLock<MicroKernel> = OnceLock::new();
    *SELECTED.get_or_init(|| {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            MicroKernel::Fma
        } else {
            MicroKernel::Reference
        }
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn select_micro_kernel() -> MicroKernel {
    MicroKernel::Reference
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Matrix {
        Matrix::from_fn(rows, cols, f)
    }

    fn assert_close(c1: &Matrix, c2: &Matrix, tol: f64) {
        assert_eq!((c1.rows(), c1.cols()), (c2.rows(), c2.cols()));
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            let scale = 1.0f64.max(y.abs());
            assert!((x - y).abs() <= tol * scale, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_across_panel_boundaries() {
        // m spans two MC panels, k spans two KC panels, edges not multiples
        // of MR/NR — every padding path is exercised.
        let (m, n, k) = (MC + 3, NR * 2 + 5, KC + 7);
        let a = filled(m, k, |i, j| ((i * 31 + j * 17) % 23) as f64 * 0.37 - 3.0);
        let b = filled(k, n, |i, j| ((i * 13 + j * 29) % 19) as f64 * 0.23 - 1.5);
        let mut ws = GemmWorkspace::new();
        let mut c_blocked = Matrix::default();
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c_blocked,
            &mut ws,
        );
        let mut c_naive = Matrix::default();
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c_naive,
        );
        assert_close(&c_blocked, &c_naive, 1e-12);
    }

    #[test]
    fn all_op_combinations_agree_with_naive() {
        let (m, n, k) = (37, 26, 41); // above the cutoff: 37·26·41 ≈ 39k
        let mut ws = GemmWorkspace::new();
        for op_a in [GemmOp::NoTrans, GemmOp::Trans] {
            for op_b in [GemmOp::NoTrans, GemmOp::Trans] {
                let a = match op_a {
                    GemmOp::NoTrans => filled(m, k, |i, j| (i as f64 - 2.0 * j as f64).sin()),
                    GemmOp::Trans => filled(k, m, |i, j| (i as f64 - 2.0 * j as f64).sin()),
                };
                let b = match op_b {
                    GemmOp::NoTrans => filled(k, n, |i, j| (0.3 * i as f64 + j as f64).cos()),
                    GemmOp::Trans => filled(n, k, |i, j| (0.3 * i as f64 + j as f64).cos()),
                };
                let mut c1 = Matrix::default();
                gemm(op_a, op_b, 1.3, &a, &b, 0.0, &mut c1, &mut ws);
                let mut c2 = Matrix::default();
                gemm_naive(op_a, op_b, 1.3, &a, &b, 0.0, &mut c2);
                assert_close(&c1, &c2, 1e-12);
            }
        }
    }

    #[test]
    fn beta_accumulates_into_existing_output() {
        let (m, n, k) = (20, 24, 32); // 15k > cutoff
        let a = filled(m, k, |i, j| (i + j) as f64 * 0.1);
        let b = filled(k, n, |i, j| (i as f64 - j as f64) * 0.2);
        let c0 = filled(m, n, |i, j| (i * n + j) as f64 * 0.01);
        let mut ws = GemmWorkspace::new();
        let mut c1 = c0.clone();
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            2.0,
            &a,
            &b,
            0.5,
            &mut c1,
            &mut ws,
        );
        let mut c2 = c0.clone();
        gemm_naive(GemmOp::NoTrans, GemmOp::NoTrans, 2.0, &a, &b, 0.5, &mut c2);
        assert_close(&c1, &c2, 1e-12);
    }

    #[test]
    fn matches_matrix_matmul_reference() {
        let a = filled(30, 22, |i, j| ((i * 7 + j) % 13) as f64 - 6.0);
        let b = filled(22, 31, |i, j| ((i + 5 * j) % 11) as f64 - 5.0);
        let mut ws = GemmWorkspace::new();
        let mut c = Matrix::default();
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            &mut ws,
        );
        assert_close(&c, &a.matmul(&b), 1e-12);
    }

    #[test]
    fn epilogue_sees_every_element_once() {
        struct Count {
            hits: Matrix,
        }
        impl Epilogue for Count {
            fn apply(&mut self, row: usize, col0: usize, seg: &mut [f64]) {
                for (j, _) in seg.iter().enumerate() {
                    self.hits[(row, col0 + j)] += 1.0;
                }
            }
        }
        for (m, n, k) in [(3, 4, 5), (33, 29, 17)] {
            let a = filled(m, k, |i, j| (i + j) as f64);
            let b = filled(k, n, |i, j| (i as f64 + 1.0) * (j as f64 - 1.0));
            let mut ws = GemmWorkspace::new();
            let mut c = Matrix::default();
            let mut epi = Count {
                hits: Matrix::zeros(m, n),
            };
            gemm_with(
                GemmOp::NoTrans,
                GemmOp::NoTrans,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
                &mut ws,
                &mut epi,
            );
            assert!(epi.hits.as_slice().iter().all(|&h| h == 1.0));
        }
    }

    #[test]
    fn workspace_reuse_across_shapes_is_sound() {
        let mut ws = GemmWorkspace::new();
        let mut c = Matrix::default();
        for (m, n, k) in [(40, 40, 40), (7, 9, 11), (130, 12, 260)] {
            let a = filled(m, k, |i, j| (i as f64 * 0.7 - j as f64 * 0.3).tanh());
            let b = filled(k, n, |i, j| ((i * j) as f64 * 0.05).sin());
            gemm(
                GemmOp::NoTrans,
                GemmOp::NoTrans,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
                &mut ws,
            );
            let mut expect = Matrix::default();
            gemm_naive(
                GemmOp::NoTrans,
                GemmOp::NoTrans,
                1.0,
                &a,
                &b,
                0.0,
                &mut expect,
            );
            assert_close(&c, &expect, 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions must agree")]
    fn rejects_mismatched_inner_dims() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 2);
        let mut ws = GemmWorkspace::new();
        let mut c = Matrix::default();
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            &mut ws,
        );
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn rejects_wrong_output_shape_for_nonzero_beta() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(4, 2);
        let mut ws = GemmWorkspace::new();
        let mut c = Matrix::zeros(1, 1);
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            1.0,
            &mut c,
            &mut ws,
        );
    }
}
