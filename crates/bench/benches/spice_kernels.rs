//! Criterion micro-benchmarks of the simulator substrate: the per-analysis
//! costs that make one "SPICE simulation" expensive.

use circuits::{FoldedCascodeOta, StrongArmLatch};
use criterion::{criterion_group, criterion_main, Criterion};
use opt::SizingProblem;
use spice::{Circuit, SimOptions, Waveform, GND};

fn build_rc_ladder(n: usize) -> Circuit {
    let mut c = Circuit::new();
    let vin = c.node("in");
    c.add_vsource_ac("V1", vin, GND, Waveform::Dc(1.0), 1.0).unwrap();
    let mut prev = vin;
    for i in 0..n {
        let node = c.node(&format!("n{i}"));
        c.add_resistor(&format!("R{i}"), prev, node, 1e3).unwrap();
        c.add_capacitor(&format!("C{i}"), node, GND, 1e-12).unwrap();
        prev = node;
    }
    c
}

fn bench_spice(c: &mut Criterion) {
    let opts = SimOptions::default();

    c.bench_function("dc_op_rc_ladder_30", |b| {
        let ckt = build_rc_ladder(30);
        b.iter(|| spice::op(&ckt, &opts).unwrap())
    });

    c.bench_function("ac_sweep_rc_ladder_30_x25", |b| {
        let ckt = build_rc_ladder(30);
        let op = spice::op(&ckt, &opts).unwrap();
        let freqs = spice::log_freqs(1e3, 1e8, 5);
        b.iter(|| spice::ac(&ckt, &opts, &op, &freqs).unwrap())
    });

    c.bench_function("ota_full_evaluation", |b| {
        let ota = FoldedCascodeOta::new();
        let x = ota.nominal();
        b.iter(|| ota.evaluate(&x))
    });

    c.bench_function("latch_full_evaluation", |b| {
        let latch = StrongArmLatch::new();
        let x = latch.nominal();
        b.iter(|| latch.evaluate(&x))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spice
}
criterion_main!(benches);
