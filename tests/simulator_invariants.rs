//! Property-style integration tests on the simulator substrate, driven
//! through the public crate APIs.

use proptest::prelude::*;
use spice::{Circuit, SimOptions, Waveform, GND};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Voltage dividers solve exactly for any positive resistor pair.
    #[test]
    fn divider_solves(r1 in 10.0..1e6f64, r2 in 10.0..1e6f64, v in 0.1..10.0f64) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, GND, Waveform::Dc(v)).unwrap();
        c.add_resistor("R1", a, b, r1).unwrap();
        c.add_resistor("R2", b, GND, r2).unwrap();
        let op = spice::op(&c, &SimOptions::default()).unwrap();
        let expect = v * r2 / (r1 + r2);
        prop_assert!((op.voltage(b) - expect).abs() < 1e-6 * v.max(1.0));
    }

    /// Superposition holds on a linear two-source network.
    #[test]
    fn linear_superposition(v1 in -5.0..5.0f64, v2 in -5.0..5.0f64) {
        let build = |va: f64, vb: f64| {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            let m = c.node("m");
            c.add_vsource("V1", a, GND, Waveform::Dc(va)).unwrap();
            c.add_vsource("V2", b, GND, Waveform::Dc(vb)).unwrap();
            c.add_resistor("R1", a, m, 1e3).unwrap();
            c.add_resistor("R2", b, m, 2e3).unwrap();
            c.add_resistor("R3", m, GND, 3e3).unwrap();
            let op = spice::op(&c, &SimOptions::default()).unwrap();
            op.voltage(m)
        };
        let both = build(v1, v2);
        let sum = build(v1, 0.0) + build(0.0, v2);
        prop_assert!((both - sum).abs() < 1e-6);
    }

    /// RC step responses settle to the source value from any RC in range.
    #[test]
    fn rc_always_settles(r_exp in 2.0..5.0f64, c_exp in -13.0..-9.0f64) {
        let r = 10f64.powf(r_exp);
        let cap = 10f64.powf(c_exp);
        let tau = r * cap;
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, GND, Waveform::pulse(0.0, 1.0, 0.0, tau / 100.0, tau / 100.0, 1e3, f64::INFINITY)).unwrap();
        c.add_resistor("R1", a, b, r).unwrap();
        c.add_capacitor("C1", b, GND, cap).unwrap();
        let tr = spice::transient(&c, &SimOptions::default(), 8.0 * tau, tau / 25.0).unwrap();
        prop_assert!((tr.final_voltage(b) - 1.0).abs() < 0.01);
    }
}

/// KCL at a converged MOSFET operating point: branch currents into every
/// internal node sum to ~zero (checked through device currents).
#[test]
fn kcl_holds_at_mosfet_op() {
    use circuits::tech::tech_180nm;
    let t = tech_180nm();
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let g = c.node("g");
    let d = c.node("d");
    c.add_vsource("VDD", vdd, GND, Waveform::Dc(1.8)).unwrap();
    c.add_vsource("VG", g, GND, Waveform::Dc(0.8)).unwrap();
    c.add_resistor("RD", vdd, d, 10e3).unwrap();
    c.add_mosfet("M1", d, g, GND, GND, &t.nmos, 10e-6, 0.5e-6, 1.0)
        .unwrap();
    let op = spice::op(&c, &SimOptions::default()).unwrap();
    let i_r = (op.voltage(vdd) - op.voltage(d)) / 10e3;
    let i_m = op.mos_op("M1").unwrap().id;
    assert!((i_r - i_m).abs() < 1e-9, "KCL at drain: {i_r} vs {i_m}");
}
