//! Pseudo-sample generation (paper Eq. 2).
//!
//! From `N` simulated designs, DNN-Opt constructs up to `N²` critic
//! training pairs: for designs `x_i`, `x_j` the pseudo-sample is
//!
//! ```text
//! x_ps = [x_i, x_j − x_i],   target = f(x_j)
//! ```
//!
//! which teaches the critic to predict the performance of "where a step
//! lands" — exactly what the actor needs. The paper reports that the 2d
//! input trained on pseudo-samples is significantly more accurate than a
//! d-input network on the raw samples (validated here by the ablation
//! bench).

use linalg::Matrix;
use rand::Rng;

/// Builds the full `N²` Cartesian pseudo-sample set.
///
/// `xs` are design points (unit-cube coordinates, one per row of the
/// conceptual matrix) and `fs` the corresponding spec vectors. Outputs the
/// critic input matrix (`N²×2d`) and target matrix (`N²×(m+1)`).
///
/// # Panics
///
/// Panics if `xs` and `fs` lengths differ or are empty.
pub fn all_pseudo_samples(xs: &[Vec<f64>], fs: &[Vec<f64>]) -> (Matrix, Matrix) {
    let mut inp = Matrix::default();
    let mut out = Matrix::default();
    all_pseudo_samples_into(xs, fs, &mut inp, &mut out);
    (inp, out)
}

/// [`all_pseudo_samples`] into caller-owned buffers (reshaped to fit,
/// reusing their allocations) — the per-epoch path of the critic trainer.
///
/// # Panics
///
/// Panics if `xs` and `fs` lengths differ or are empty.
pub fn all_pseudo_samples_into(
    xs: &[Vec<f64>],
    fs: &[Vec<f64>],
    inp: &mut Matrix,
    out: &mut Matrix,
) {
    assert_eq!(xs.len(), fs.len(), "design/spec count mismatch");
    assert!(!xs.is_empty(), "need at least one design");
    let n = xs.len();
    let d = xs[0].len();
    let mo = fs[0].len();
    inp.reshape_zeroed(n * n, 2 * d);
    out.reshape_zeroed(n * n, mo);
    for i in 0..n {
        for j in 0..n {
            let r = i * n + j;
            let row = inp.row_mut(r);
            for k in 0..d {
                row[k] = xs[i][k];
                row[d + k] = xs[j][k] - xs[i][k];
            }
            out.row_mut(r).copy_from_slice(&fs[j]);
        }
    }
}

/// Draws `count` random pseudo-samples — the subsampled variant used once
/// `N²` outgrows the per-epoch budget. Half of the pairs are uniform
/// (global structure); the other half are *locality-biased*: the
/// destination `j` is the nearest of several random candidates to the
/// origin `i`, which concentrates training signal on the short steps the
/// actor actually proposes (an implementation refinement of Eq. 2's
/// subsampling; the full N² set is used whenever it fits).
///
/// # Panics
///
/// Panics if `xs` and `fs` lengths differ or are empty.
pub fn sample_pseudo_batch<R: Rng + ?Sized>(
    xs: &[Vec<f64>],
    fs: &[Vec<f64>],
    count: usize,
    rng: &mut R,
) -> (Matrix, Matrix) {
    let mut inp = Matrix::default();
    let mut out = Matrix::default();
    sample_pseudo_batch_into(xs, fs, count, rng, &mut inp, &mut out);
    (inp, out)
}

/// [`sample_pseudo_batch`] into caller-owned buffers (reshaped to fit,
/// reusing their allocations). Draws the identical sample sequence as the
/// allocating variant for the same RNG state.
///
/// # Panics
///
/// Panics if `xs` and `fs` lengths differ or are empty.
pub fn sample_pseudo_batch_into<R: Rng + ?Sized>(
    xs: &[Vec<f64>],
    fs: &[Vec<f64>],
    count: usize,
    rng: &mut R,
    inp: &mut Matrix,
    out: &mut Matrix,
) {
    assert_eq!(xs.len(), fs.len(), "design/spec count mismatch");
    assert!(!xs.is_empty(), "need at least one design");
    let n = xs.len();
    let d = xs[0].len();
    let mo = fs[0].len();
    inp.reshape_zeroed(count, 2 * d);
    out.reshape_zeroed(count, mo);
    let dist_sq =
        |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum() };
    for r in 0..count {
        let i = rng.gen_range(0..n);
        let j = if r % 2 == 0 {
            rng.gen_range(0..n)
        } else {
            // Tournament locality: nearest of 8 random destinations.
            let mut best = rng.gen_range(0..n);
            let mut bd = dist_sq(&xs[i], &xs[best]);
            for _ in 0..7 {
                let c = rng.gen_range(0..n);
                let cd = dist_sq(&xs[i], &xs[c]);
                if cd < bd {
                    bd = cd;
                    best = c;
                }
            }
            best
        };
        let row = inp.row_mut(r);
        for k in 0..d {
            row[k] = xs[i][k];
            row[d + k] = xs[j][k] - xs[i][k];
        }
        out.row_mut(r).copy_from_slice(&fs[j]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn toy() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let xs = vec![vec![0.0, 0.0], vec![1.0, 0.5], vec![0.2, 0.8]];
        let fs = vec![vec![1.0], vec![2.0], vec![3.0]];
        (xs, fs)
    }

    #[test]
    fn full_set_has_n_squared_rows() {
        let (xs, fs) = toy();
        let (inp, out) = all_pseudo_samples(&xs, &fs);
        assert_eq!(inp.rows(), 9);
        assert_eq!(inp.cols(), 4);
        assert_eq!(out.rows(), 9);
        assert_eq!(out.cols(), 1);
    }

    #[test]
    fn pair_layout_matches_eq2() {
        let (xs, fs) = toy();
        let (inp, out) = all_pseudo_samples(&xs, &fs);
        // Row for (i=0, j=1): [x0, x1 − x0], target f(x1).
        let r = 1;
        assert_eq!(inp.row(r), &[0.0, 0.0, 1.0, 0.5]);
        assert_eq!(out[(r, 0)], fs[1][0]);
        // Diagonal (i=j): delta is zero, target is own spec.
        let r = 4; // (1,1)
        assert_eq!(inp.row(r), &[1.0, 0.5, 0.0, 0.0]);
        assert_eq!(out[(r, 0)], fs[1][0]);
    }

    #[test]
    fn target_is_destination_not_origin() {
        let (xs, fs) = toy();
        let (_, out) = all_pseudo_samples(&xs, &fs);
        // Row (i=2, j=0) -> target must be f(x0), not f(x2).
        assert_eq!(out[(2 * 3, 0)], fs[0][0]);
    }

    #[test]
    fn subsampled_batch_shapes_and_consistency() {
        let (xs, fs) = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let (inp, out) = sample_pseudo_batch(&xs, &fs, 50, &mut rng);
        assert_eq!(inp.rows(), 50);
        assert_eq!(out.rows(), 50);
        // Every row must be a valid (x_i, x_j - x_i) pair: x part matches a
        // known design and x + delta matches another.
        for r in 0..50 {
            let row = inp.row(r);
            let x = &row[0..2];
            let dx = &row[2..4];
            let dest = [x[0] + dx[0], x[1] + dx[1]];
            let found_src = xs.iter().any(|p| p[0] == x[0] && p[1] == x[1]);
            let found_dst = xs
                .iter()
                .position(|p| (p[0] - dest[0]).abs() < 1e-12 && (p[1] - dest[1]).abs() < 1e-12);
            assert!(found_src, "row {r} origin not a design");
            let j = found_dst.expect("destination must be a design");
            assert_eq!(out[(r, 0)], fs[j][0], "target must be destination spec");
        }
    }
}
