//! Row-major dense matrix.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// let c = a.matmul(&b);
/// assert_eq!(c[(0, 0)], 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Allocation-free strided view of column `j`: iterates the column's
    /// entries top to bottom without copying. Hot paths that previously
    /// materialized [`Matrix::col`]'s `Vec` should walk this instead.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col_iter(&self, j: usize) -> impl ExactSizeIterator<Item = f64> + '_ {
        assert!(j < self.cols, "column index out of bounds");
        self.data.iter().skip(j).step_by(self.cols.max(1)).copied()
    }

    /// Copies column `j` into a new vector (see [`Matrix::col_iter`] for
    /// the allocation-free variant).
    pub fn col(&self, j: usize) -> Vec<f64> {
        self.col_iter(j).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order keeps the inner loop walking contiguous memory.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reshapes this matrix to `rows×cols`, zero-filling every entry and
    /// reusing the existing allocation when capacity allows. The workhorse
    /// of the workspace-reuse APIs.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `rows×cols` *without* clearing: existing entries keep
    /// stale values (only a grown tail is zeroed). For kernels that
    /// overwrite every element anyway — skips [`Matrix::reshape_zeroed`]'s
    /// full memset on the hot path.
    pub(crate) fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self * other` written into `out` (reshaped to fit),
    /// with no intermediate allocation. Produces the same accumulation
    /// order — hence bit-identical results — as [`Matrix::matmul`].
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        out.reshape_zeroed(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Product with the transposed right factor, `self * otherᵀ`, written
    /// into `out`. Equivalent to `self.matmul(&other.transpose())` without
    /// materializing the transpose — the shape of every dense-layer forward
    /// pass (`y = x·Wᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        out.reshape_zeroed(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (o, j) in orow.iter_mut().zip(0..other.rows) {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut s = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    s += a * b;
                }
                *o = s;
            }
        }
    }

    /// Product with the transposed left factor, `selfᵀ * other`, written
    /// into `out`. Equivalent to `self.transpose().matmul(other)` without
    /// materializing the transpose — the shape of every dense-layer weight
    /// gradient (`dW = δᵀ·x`).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "inner dimensions must agree");
        out.reshape_zeroed(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Copies `src` into this matrix, reshaping and reusing the allocation.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal cols");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix-vector product `selfᵀ * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length must equal rows");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            let s = v[i];
            for (o, &a) in out.iter_mut().zip(row) {
                *o += s * a;
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Matrix {
        let mut m = self.clone();
        m.map_inplace(f);
        m
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Default for Matrix {
    /// An empty `0×0` matrix — the natural seed for `*_into` buffers.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_inplace(s);
        m
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5e}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "{}]", if self.cols > 8 { ", ..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn col_iter_matches_col_and_is_exact_size() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        for j in 0..3 {
            let it = m.col_iter(j);
            assert_eq!(it.len(), 3);
            assert_eq!(it.collect::<Vec<_>>(), m.col(j));
        }
        // Single-column matrix: stride equals the full row length.
        let one = Matrix::from_rows(&[&[1.5], &[-2.5]]);
        assert_eq!(one.col_iter(0).collect::<Vec<_>>(), vec![1.5, -2.5]);
    }

    #[test]
    #[should_panic(expected = "column index out of bounds")]
    fn col_iter_rejects_out_of_range() {
        let m = Matrix::zeros(2, 2);
        let _ = m.col_iter(2);
    }

    #[test]
    #[should_panic(expected = "all rows must have equal length")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matvec_and_tr_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[4.0, 3.0], &[2.0, 1.0]]);
        assert_eq!(&a + &b, Matrix::filled(2, 2, 5.0));
        assert_eq!(&a - &a, Matrix::zeros(2, 2));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
        assert_eq!(
            a.hadamard(&b),
            Matrix::from_rows(&[&[4.0, 6.0], &[6.0, 4.0]])
        );
    }

    #[test]
    fn norms_and_guards() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
        assert!(!a.has_non_finite());
        let mut b = a.clone();
        b[(0, 0)] = f64::NAN;
        assert!(b.has_non_finite());
    }

    #[test]
    fn into_variants_match_allocating_products() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 * 0.3 - 1.0);
        let b = Matrix::from_fn(4, 2, |i, j| (i as f64 - j as f64) * 0.7);
        let mut out = Matrix::zeros(1, 1);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        let c = Matrix::from_fn(5, 4, |i, j| (i + 2 * j) as f64 * 0.1);
        a.matmul_nt_into(&c, &mut out);
        assert_eq!(out, a.matmul(&c.transpose()));

        let d = Matrix::from_fn(3, 6, |i, j| ((i * j) as f64).sin());
        a.matmul_tn_into(&d, &mut out);
        assert_eq!(out, a.transpose().matmul(&d));
    }

    #[test]
    fn reshape_and_copy_reuse_storage() {
        let mut m = Matrix::zeros(4, 4);
        m.reshape_zeroed(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.copy_from(&src);
        assert_eq!(m, src);
    }

    #[test]
    fn map_and_from_fn() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        assert_eq!(m, Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 2.0]]));
        let sq = m.map(|x| x * x);
        assert_eq!(sq[(1, 1)], 4.0);
    }
}
