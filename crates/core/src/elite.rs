//! Elite-population bookkeeping (paper §II-B, Alg. 1 lines 7–8).

/// Selects the indices of the `n_elite` designs with the smallest FoM.
///
/// # Panics
///
/// Panics if any FoM is NaN.
pub fn elite_indices(foms: &[f64], n_elite: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..foms.len()).collect();
    idx.sort_by(|&a, &b| foms[a].partial_cmp(&foms[b]).expect("NaN FoM"));
    idx.truncate(n_elite.min(foms.len()));
    idx
}

/// Restricted search-region bounds (paper Eq. 6): the per-coordinate
/// bounding box of the elite population,
///
/// ```text
/// lb_rest_i = min_k x_k[i],   ub_rest_i = max_k x_k[i]
/// ```
///
/// # Panics
///
/// Panics on an empty elite set.
pub fn restricted_bounds(elite: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    assert!(!elite.is_empty(), "elite population cannot be empty");
    let d = elite[0].len();
    let mut lb = vec![f64::INFINITY; d];
    let mut ub = vec![f64::NEG_INFINITY; d];
    for x in elite {
        for j in 0..d {
            lb[j] = lb[j].min(x[j]);
            ub[j] = ub[j].max(x[j]);
        }
    }
    (lb, ub)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_lowest_fom() {
        let foms = [3.0, 1.0, 2.0, 0.5];
        let e = elite_indices(&foms, 2);
        assert_eq!(e, vec![3, 1]);
    }

    #[test]
    fn elite_larger_than_population_is_clamped() {
        let foms = [1.0, 2.0];
        assert_eq!(elite_indices(&foms, 10).len(), 2);
    }

    #[test]
    fn bounds_contain_every_elite_point() {
        let elite = vec![vec![0.2, 0.9], vec![0.5, 0.1], vec![0.3, 0.4]];
        let (lb, ub) = restricted_bounds(&elite);
        assert_eq!(lb, vec![0.2, 0.1]);
        assert_eq!(ub, vec![0.5, 0.9]);
        for x in &elite {
            for j in 0..2 {
                assert!(x[j] >= lb[j] && x[j] <= ub[j]);
            }
        }
    }

    #[test]
    fn single_member_box_is_degenerate() {
        let (lb, ub) = restricted_bounds(&[vec![0.7, 0.7]]);
        assert_eq!(lb, ub);
    }
}
