//! Sparse complex LU for the simulator's frequency-domain MNA systems.
//!
//! AC and noise analyses solve `(G + jωC)·x = b` at every frequency point.
//! The *pattern* of that system is fixed by the circuit topology — only the
//! values change with ω — which is exactly the split the real
//! [`crate::SparseLu`] exploits across Newton iterations. The complex path
//! is therefore not a mirror implementation but the *same* implementation:
//! [`CscComplexMatrix`] and [`SparseComplexLu`] are the [`C64`]
//! instantiations of the generic [`CscT`]/[`crate::SparseLuT`] sparse core
//! in `sparse.rs`, sharing the minimum-degree ordering, the Gilbert–Peierls
//! recording, the scan-free refactor replay, the supernodal blocked replay
//! (and its deterministic etree-parallel mode), and the transpose solve the
//! noise analysis' adjoint system needs. One elimination, two element
//! types — the pivot logic cannot drift between them.
//!
//! The intended rhythm (mirrored by `spice`'s AC workspace): analyze the
//! pattern once per topology, `factor` at the first frequency point of a
//! sweep to pin the pivot sequence, then `refactor_into` every subsequent
//! point.

use crate::complex::C64;
use crate::sparse::CscT;

/// A square sparse complex matrix in compressed-sparse-column (CSC) form —
/// the [`C64`] instantiation of [`CscT`]. Same construction (and same slot
/// indices) as the real [`crate::CscMatrix`] built from the same
/// coordinates.
pub type CscComplexMatrix = CscT<C64>;

/// Sparse complex LU factorization with a recorded elimination pattern —
/// the [`C64`] instantiation of [`crate::SparseLuT`]. Storage conventions
/// are identical to the real [`crate::SparseLu`]: `L` is unit lower
/// triangular with *original* row indices, `U` upper triangular with
/// *pivotal positions*, reciprocal pivots in `inv_diag`.
///
/// # Example
///
/// ```
/// use linalg::{C64, CscComplexMatrix, SparseComplexLu};
///
/// // [2+j 1; 1 3] over an explicit pattern.
/// let (mut a, slots) =
///     CscComplexMatrix::from_coordinates(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
/// let vals = [C64::new(2.0, 1.0), C64::ONE, C64::ONE, C64::real(3.0)];
/// for (s, v) in slots.iter().zip(vals) {
///     a.values_mut()[*s as usize] += v;
/// }
/// let mut lu = SparseComplexLu::new();
/// lu.factor(&a).expect("non-singular");
/// let mut x = Vec::new();
/// lu.solve_into(&[C64::real(3.0), C64::real(5.0)], &mut x).unwrap();
/// let r0 = a.to_dense_rows();
/// let ax0 = r0[0][0] * x[0] + r0[0][1] * x[1];
/// assert!((ax0 - C64::real(3.0)).abs() < 1e-12);
/// ```
pub type SparseComplexLu = crate::sparse::SparseLuT<C64>;

impl CscT<C64> {
    /// Builds a CSC matrix from the exact nonzero pattern (and values) of a
    /// dense row-major matrix. Test/bench helper.
    ///
    /// # Panics
    ///
    /// Panics on ragged or non-square input.
    pub fn from_dense_rows(a: &[Vec<C64>]) -> Self {
        let n = a.len();
        assert!(
            a.iter().all(|row| row.len() == n),
            "CscComplexMatrix requires a square matrix"
        );
        let coords: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| a[i][j] != C64::ZERO)
            .collect();
        let (mut m, slots) = CscComplexMatrix::from_coordinates(n, &coords);
        for (&(i, j), &s) in coords.iter().zip(&slots) {
            m.values_mut()[s as usize] = a[i][j];
        }
        m
    }

    /// Densifies the matrix into row-major rows (test helper).
    pub fn to_dense_rows(&self) -> Vec<Vec<C64>> {
        let n = self.n();
        let mut m = vec![vec![C64::ZERO; n]; n];
        for c in 0..n {
            for t in self.col_ptr[c]..self.col_ptr[c + 1] {
                m[self.row_idx[t]][c] += self.values[t];
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FactorError, SupernodalMode};

    /// Deterministic pseudo-random `G + jωC`-flavored test system: strong
    /// real diagonal, sparse complex off-diagonals.
    fn ac_like(n: usize, omega: f64, salt: u64) -> Vec<Vec<C64>> {
        let mut s = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        };
        let mut m = vec![vec![C64::ZERO; n]; n];
        for i in 0..n {
            m[i][i] = C64::new(3.0 + next().abs(), omega * (0.1 + next().abs()));
            if i + 1 < n {
                m[i][i + 1] = C64::new(next() * 0.5, omega * next() * 0.2);
                m[i + 1][i] = C64::new(next() * 0.5, omega * next() * 0.2);
            }
            if i > 0 && i % 5 == 0 {
                m[0][i] = C64::new(next() * 0.3, 0.0);
                m[i][0] = C64::new(next() * 0.3, 0.0);
            }
        }
        m
    }

    fn residual(a: &[Vec<C64>], x: &[C64], b: &[C64]) -> f64 {
        let n = a.len();
        (0..n)
            .map(|i| {
                let mut s = C64::ZERO;
                for j in 0..n {
                    s += a[i][j] * x[j];
                }
                (s - b[i]).abs()
            })
            .fold(0.0, f64::max)
    }

    fn rhs(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::new((i as f64 * 0.3).sin() + 1.0, (i as f64 * 0.7).cos()))
            .collect()
    }

    #[test]
    fn factor_and_solve_small_sizes() {
        for n in [1usize, 2, 5, 17, 40] {
            let dense = ac_like(n, 2.0, n as u64);
            let a = CscComplexMatrix::from_dense_rows(&dense);
            let mut lu = SparseComplexLu::new();
            lu.factor(&a).unwrap();
            let b = rhs(n);
            let mut x = Vec::new();
            lu.solve_into(&b, &mut x).unwrap();
            assert!(residual(&dense, &x, &b) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn refactor_tracks_omega_sweep() {
        let n = 26;
        let mut lu = SparseComplexLu::new();
        let mut x = Vec::new();
        let b = rhs(n);
        // The pattern is fixed; values change with omega, as in an AC sweep.
        let a0 = CscComplexMatrix::from_dense_rows(&ac_like(n, 1.0, 9));
        lu.factor(&a0).unwrap();
        for step in 1..8 {
            let omega = 1.0 + step as f64 * 3.0;
            let dense = ac_like(n, omega, 9);
            let a = CscComplexMatrix::from_dense_rows(&dense);
            assert_eq!(a.nnz(), a0.nnz(), "pattern must be omega-independent");
            lu.refactor_into(&a).unwrap();
            lu.solve_into(&b, &mut x).unwrap();
            assert!(residual(&dense, &x, &b) < 1e-9, "omega = {omega}");
        }
    }

    #[test]
    fn transpose_solve_is_adjoint_of_forward() {
        let n = 19;
        let dense = ac_like(n, 4.0, 3);
        let a = CscComplexMatrix::from_dense_rows(&dense);
        let mut lu = SparseComplexLu::new();
        lu.factor(&a).unwrap();
        let b = rhs(n);
        let mut y = Vec::new();
        lu.solve_transpose_into(&b, &mut y).unwrap();
        // Residual of the transposed system: (Aᵀ y)_i = Σ_j a[j][i]·y[j].
        let r = (0..n)
            .map(|i| {
                let mut s = C64::ZERO;
                for j in 0..n {
                    s += dense[j][i] * y[j];
                }
                (s - b[i]).abs()
            })
            .fold(0.0, f64::max);
        assert!(r < 1e-9, "transpose residual {r}");
        // And a forward solve still works afterwards (shared accumulator).
        let mut x = Vec::new();
        lu.solve_into(&b, &mut x).unwrap();
        assert!(residual(&dense, &x, &b) < 1e-9);
    }

    #[test]
    fn slot_map_assembly_roundtrip() {
        let coords = [(0, 0), (1, 1), (0, 0), (2, 1), (1, 1)];
        let (mut m, slots) = CscComplexMatrix::from_coordinates(3, &coords);
        assert_eq!(m.nnz(), 3);
        for &s in &slots {
            m.values_mut()[s as usize] += C64::new(1.0, 0.5);
        }
        let d = m.to_dense_rows();
        assert_eq!(d[0][0], C64::new(2.0, 1.0));
        assert_eq!(d[1][1], C64::new(2.0, 1.0));
        assert_eq!(d[2][1], C64::new(1.0, 0.5));
        // The complex pattern matches the real one built from the same
        // coordinates (shared construction).
        let (rm, rslots) = crate::CscMatrix::from_coordinates(3, &coords);
        assert_eq!(rm.nnz(), m.nnz());
        assert_eq!(rslots, slots);
    }

    #[test]
    fn detects_singularity_and_recovers() {
        // Structural: empty column.
        let (a, _) = CscComplexMatrix::from_coordinates(2, &[(0, 0), (1, 0)]);
        let mut lu = SparseComplexLu::new();
        assert!(matches!(lu.factor(&a), Err(FactorError::Singular { .. })));
        // Refactor on the incomplete recording is a shape error, not a
        // panic.
        assert!(matches!(
            lu.refactor_into(&a),
            Err(FactorError::Shape { .. })
        ));
        // Numerical: dependent rows.
        let dense = vec![
            vec![C64::new(1.0, 1.0), C64::new(2.0, 2.0)],
            vec![C64::new(2.0, 2.0), C64::new(4.0, 4.0)],
        ];
        let a = CscComplexMatrix::from_dense_rows(&dense);
        assert!(matches!(lu.factor(&a), Err(FactorError::Singular { .. })));
        // Refactor reports singularity when a pivot collapses to zero.
        let good = ac_like(4, 1.0, 8);
        let mut a = CscComplexMatrix::from_dense_rows(&good);
        lu.factor(&a).unwrap();
        a.set_zero();
        assert!(matches!(
            lu.refactor_into(&a),
            Err(FactorError::Singular { .. })
        ));
        assert!(!lu.is_factored());
        assert!(lu.solve_into(&rhs(4), &mut Vec::new()).is_err());
        // A later successful factor restores the object.
        let a = CscComplexMatrix::from_dense_rows(&good);
        lu.factor(&a).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&rhs(4), &mut x).unwrap();
        assert!(residual(&good, &x, &rhs(4)) < 1e-9);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // MNA voltage-source block: zero on the branch diagonal.
        let dense = vec![
            vec![C64::new(1e-3, 1e-4), C64::ONE],
            vec![C64::ONE, C64::ZERO],
        ];
        let a = CscComplexMatrix::from_dense_rows(&dense);
        let mut lu = SparseComplexLu::new();
        lu.factor(&a).unwrap();
        let b = [C64::ZERO, C64::real(2.0)];
        let mut x = Vec::new();
        lu.solve_into(&b, &mut x).unwrap();
        assert!(residual(&dense, &x, &b) < 1e-12);
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let mut lu = SparseComplexLu::new();
        assert!(lu.solve_into(&[C64::ONE], &mut Vec::new()).is_err());
        assert!(lu
            .solve_transpose_into(&[C64::ONE], &mut Vec::new())
            .is_err());
        let dense = ac_like(3, 1.0, 1);
        let a = CscComplexMatrix::from_dense_rows(&dense);
        lu.factor(&a).unwrap();
        assert!(lu.solve_into(&rhs(2), &mut Vec::new()).is_err());
        assert!(lu.solve_transpose_into(&rhs(2), &mut Vec::new()).is_err());
        let b2 = CscComplexMatrix::from_dense_rows(&ac_like(2, 1.0, 1));
        assert!(matches!(
            lu.refactor_into(&b2),
            Err(FactorError::Shape { .. })
        ));
    }

    // --- Complex supernodal path (generic blocked replay over C64). ---

    #[test]
    fn supernodal_modes_agree_on_forward_and_adjoint_solves() {
        for n in [5usize, 40, 71, 90] {
            let dense = ac_like(n, 3.0, n as u64 + 50);
            let a = CscComplexMatrix::from_dense_rows(&dense);
            let b = rhs(n);
            let mut solutions: Vec<(Vec<C64>, Vec<C64>)> = Vec::new();
            for mode in [
                SupernodalMode::Auto,
                SupernodalMode::ForceScalar,
                SupernodalMode::ForceBlocked,
            ] {
                let mut lu = SparseComplexLu::new();
                lu.set_supernodal_mode(mode);
                lu.factor(&a).unwrap();
                if mode == SupernodalMode::ForceBlocked {
                    assert!(lu.supernodal_active(), "n = {n}");
                }
                let (mut x, mut y) = (Vec::new(), Vec::new());
                lu.solve_into(&b, &mut x).unwrap();
                lu.solve_transpose_into(&b, &mut y).unwrap();
                assert!(residual(&dense, &x, &b) < 1e-9, "n = {n} mode {mode:?}");
                solutions.push((x, y));
            }
            let (x0, y0) = &solutions[0];
            for (x, y) in &solutions[1..] {
                for (s, v) in x0.iter().zip(x) {
                    assert!((*s - *v).abs() <= 1e-10 * s.abs().max(1.0), "n = {n}");
                }
                for (s, v) in y0.iter().zip(y) {
                    assert!((*s - *v).abs() <= 1e-10 * s.abs().max(1.0), "n = {n}");
                }
            }
        }
    }

    #[test]
    fn blocked_refactor_is_bit_identical_to_fresh_factor_across_omega_sweep() {
        let n = 64;
        let mut sweep = SparseComplexLu::new();
        sweep.set_supernodal_mode(SupernodalMode::ForceBlocked);
        sweep
            .factor(&CscComplexMatrix::from_dense_rows(&ac_like(n, 0.5, 21)))
            .unwrap();
        assert!(sweep.supernodal_active());
        for step in 0..6 {
            let omega = 0.5 + step as f64 * 2.5;
            let a = CscComplexMatrix::from_dense_rows(&ac_like(n, omega, 21));
            sweep.refactor_into(&a).unwrap();
            // A fresh pivoting factor of the same values must store
            // bit-identical factors (factor() re-runs the blocked replay
            // after its pivoting pass exactly so this holds).
            let mut fresh = SparseComplexLu::new();
            fresh.set_supernodal_mode(SupernodalMode::ForceBlocked);
            fresh.factor(&a).unwrap();
            assert_eq!(sweep.l_vals, fresh.l_vals, "omega = {omega}");
            assert_eq!(sweep.u_vals, fresh.u_vals, "omega = {omega}");
            assert_eq!(sweep.inv_diag, fresh.inv_diag, "omega = {omega}");
        }
    }

    #[test]
    fn blocked_adjoint_matches_scalar_adjoint_on_refactored_sweep() {
        let n = 77;
        let b = rhs(n);
        let mut scalar = SparseComplexLu::new();
        scalar.set_supernodal_mode(SupernodalMode::ForceScalar);
        let mut blocked = SparseComplexLu::new();
        blocked.set_supernodal_mode(SupernodalMode::ForceBlocked);
        let a0 = CscComplexMatrix::from_dense_rows(&ac_like(n, 1.0, 33));
        scalar.factor(&a0).unwrap();
        blocked.factor(&a0).unwrap();
        for step in 1..5 {
            let omega = 1.0 + step as f64 * 4.0;
            let a = CscComplexMatrix::from_dense_rows(&ac_like(n, omega, 33));
            scalar.refactor_into(&a).unwrap();
            blocked.refactor_into(&a).unwrap();
            let (mut ys, mut yb) = (Vec::new(), Vec::new());
            scalar.solve_transpose_into(&b, &mut ys).unwrap();
            blocked.solve_transpose_into(&b, &mut yb).unwrap();
            for (s, v) in ys.iter().zip(&yb) {
                assert!(
                    (*s - *v).abs() <= 1e-10 * s.abs().max(1.0),
                    "omega = {omega}"
                );
            }
        }
    }
}
