//! Deterministic, seeded fault injection for robustness testing.
//!
//! A real sizing service sees a steady trickle of candidate×corner
//! evaluations that die inside the solver — singular MNA matrices at
//! degenerate geometries, Newton non-convergence at slow corners, timestep
//! collapse in transient. This module lets tests *manufacture* that
//! weather deterministically: a process-wide [`FaultPlan`] decides, from a
//! seed and a per-candidate key, which Newton solves are forced to fail
//! and how ([`FaultKind`]).
//!
//! Determinism contract: a fault decision depends only on
//! `(plan.seed, candidate key, solve index)` — never on threads, timing,
//! or global counters — so injected failures land on exactly the same
//! solves whether a population is evaluated serially or in parallel, and
//! the expected failure set can be recomputed exactly by a test.
//!
//! Zero cost when disabled: the only always-on work is one relaxed atomic
//! load per Newton solve (not per iteration). No plan installed — the
//! default — means no thread-local access, no hashing, nothing.
//!
//! # Usage
//!
//! ```
//! use spice::fault::{self, FaultKind, FaultPlan, FaultSolves};
//!
//! fault::install(Some(FaultPlan {
//!     seed: 7,
//!     rate: 0.5,
//!     kind: FaultKind::SingularFactor,
//!     solves: FaultSolves::All,
//! }));
//! // Testbenches wrap each candidate evaluation in a scope; solves inside
//! // a faulted scope fail with the planned kind.
//! let key = fault::candidate_key(&[1.0e-6, 2.0e-6], 0);
//! {
//!     let _scope = fault::candidate_scope(key);
//!     // ... spice::op(...) here is forced to fail iff the plan faults `key`
//! }
//! fault::install(None); // back to the zero-cost path
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

use crate::diag::FailureKind;

/// Which failure a planned fault forces on a Newton solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The LU factor is treated as singular.
    SingularFactor,
    /// The solve yields a non-finite unknown vector.
    NanResidual,
    /// The Newton loop exhausts its iteration budget.
    IterationExhaustion,
}

impl FaultKind {
    /// The [`FailureKind`] a solve injected with this fault reports.
    pub fn failure_kind(self) -> FailureKind {
        match self {
            FaultKind::SingularFactor => FailureKind::Singular,
            FaultKind::NanResidual => FailureKind::NanResidual,
            FaultKind::IterationExhaustion => FailureKind::NoConvergence,
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "singular" => Some(FaultKind::SingularFactor),
            "nan" => Some(FaultKind::NanResidual),
            "iters" => Some(FaultKind::IterationExhaustion),
            _ => None,
        }
    }
}

/// Which solve indices inside a faulted candidate scope fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSolves {
    /// Every Newton solve fails — the whole evaluation is lost (the DC
    /// recovery ladder cannot rescue it). This is the mode that models a
    /// candidate evaluation failing outright.
    All,
    /// Only the solve with this 0-based index (counted per candidate
    /// scope) fails — later solves succeed, so the recovery ladder and
    /// retry machinery get exercised and usually rescue the analysis.
    Index(u64),
}

/// A deterministic fault-injection plan.
///
/// `rate` is the fraction of candidate scopes that are faulted; the
/// decision hashes `(seed, candidate key)`, so it is reproducible and
/// thread-independent. Inside a faulted scope, `solves` picks which solve
/// indices fail with `kind`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every fault decision.
    pub seed: u64,
    /// Fraction of candidate scopes to fault, in `[0, 1]`.
    pub rate: f64,
    /// The failure forced on faulted solves.
    pub kind: FaultKind,
    /// Which solves inside a faulted scope fail.
    pub solves: FaultSolves,
}

impl FaultPlan {
    /// True when the plan faults the candidate scope with this key —
    /// pure function of `(self.seed, key)`, recomputable by tests to
    /// predict the exact injected-failure set.
    pub fn faults_candidate(&self, key: u64) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        if self.rate >= 1.0 {
            return true;
        }
        // SplitMix64 finalizer over (seed, key): a uniform u64, compared
        // against the rate threshold in fixed point.
        let u = mix(self.seed ^ 0x9E37_79B9_7F4A_7C15, key);
        (u as f64) < self.rate * (u64::MAX as f64)
    }
}

/// SplitMix64-style mixing of two words into one decorrelated word.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the candidate-scope key from a design vector and a salt
/// (typically the corner index): a hash of the raw f64 bits, so two
/// bit-identical candidates always map to the same key no matter which
/// thread evaluates them.
pub fn candidate_key(x: &[f64], salt: u64) -> u64 {
    let mut h = mix(0x243F_6A88_85A3_08D3, salt);
    for v in x {
        h = mix(h, v.to_bits());
    }
    h
}

/// Fast global "is any plan installed" flag: the only cost the fault plane
/// adds to a fault-free process.
static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);

/// One candidate scope's state: the planned fault (`None` in an unfaulted
/// scope) and the next solve index.
type ScopeState = (Option<(FaultKind, FaultSolves)>, u64);

thread_local! {
    /// Active candidate scope on this thread.
    static SCOPE: Cell<Option<ScopeState>> = const { Cell::new(None) };
}

/// Installs (or, with `None`, removes) the process-wide fault plan.
///
/// Affects only solves that run inside a [`candidate_scope`]; bare
/// analyses never inject, so an installed plan cannot perturb unrelated
/// work in the same process.
pub fn install(plan: Option<FaultPlan>) {
    *PLAN.write().expect("fault plan lock poisoned") = plan;
    ENABLED.store(plan.is_some(), Ordering::Release);
}

/// The currently installed plan, if any.
pub fn plan() -> Option<FaultPlan> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    *PLAN.read().expect("fault plan lock poisoned")
}

/// Builds a plan from the environment: `DNNOPT_FAULT_RATE` (required, a
/// fraction in `[0, 1]`), `DNNOPT_FAULT_SEED` (default 0),
/// `DNNOPT_FAULT_KIND` (`singular` | `nan` | `iters`, default `singular`).
/// Returns `None` when the rate variable is unset or unparsable — the CI
/// fault-injection job drives the end-to-end suite through this hook.
pub fn plan_from_env() -> Option<FaultPlan> {
    let rate: f64 = std::env::var("DNNOPT_FAULT_RATE").ok()?.parse().ok()?;
    let seed: u64 = std::env::var("DNNOPT_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let kind = std::env::var("DNNOPT_FAULT_KIND")
        .ok()
        .and_then(|v| FaultKind::parse(&v))
        .unwrap_or(FaultKind::SingularFactor);
    Some(FaultPlan {
        seed,
        rate,
        kind,
        solves: FaultSolves::All,
    })
}

/// RAII guard for one candidate evaluation: while alive, Newton solves on
/// this thread consult the installed plan under the scope's key. Restores
/// the previous scope (supporting nesting) on drop.
pub struct FaultScope {
    prev: Option<ScopeState>,
}

/// Enters a candidate scope keyed by `key` (see [`candidate_key`]).
/// Cheap no-op — no hashing, no thread-local write beyond the stash —
/// when no plan is installed.
#[must_use = "the scope ends when the guard drops"]
pub fn candidate_scope(key: u64) -> FaultScope {
    let decision = plan().map(|p| {
        if p.faults_candidate(key) {
            Some((p.kind, p.solves))
        } else {
            None
        }
    });
    let prev = SCOPE.with(|s| s.replace(decision.map(|d| (d, 0))));
    FaultScope { prev }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.prev.take()));
    }
}

/// Called by the Newton loop once per solve: consumes one solve index of
/// the active scope and reports the fault to inject, if any. Outside a
/// scope (or with no plan installed) this is a single atomic load.
pub(crate) fn next_solve_fault() -> Option<FaultKind> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    SCOPE.with(|s| {
        let (decision, idx) = s.get()?;
        s.set(Some((decision, idx + 1)));
        let (kind, solves) = decision?;
        match solves {
            FaultSolves::All => Some(kind),
            FaultSolves::Index(i) if i == idx => Some(kind),
            FaultSolves::Index(_) => None,
        }
    })
}

/// Installing a global plan is process-wide; serialize the tests that do it
/// so concurrent test threads cannot observe each other's plans.
#[cfg(test)]
pub(crate) static PLAN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::PLAN_LOCK;
    use super::*;

    #[test]
    fn candidate_keys_depend_on_bits_and_salt() {
        let a = candidate_key(&[1.0, 2.0], 0);
        let b = candidate_key(&[1.0, 2.0], 1);
        let c = candidate_key(&[1.0, 2.0 + 1e-15], 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, candidate_key(&[1.0, 2.0], 0));
    }

    #[test]
    fn fault_rate_is_roughly_honored_and_deterministic() {
        let plan = FaultPlan {
            seed: 3,
            rate: 0.2,
            kind: FaultKind::SingularFactor,
            solves: FaultSolves::All,
        };
        let hits = (0..10_000)
            .filter(|&i| plan.faults_candidate(candidate_key(&[i as f64], 0)))
            .count();
        assert!((1_500..2_500).contains(&hits), "20% rate gave {hits}/10000");
        // Bit-for-bit reproducible.
        for i in 0..100 {
            let k = candidate_key(&[i as f64], 0);
            assert_eq!(plan.faults_candidate(k), plan.faults_candidate(k));
        }
        // Extreme rates short-circuit.
        let never = FaultPlan { rate: 0.0, ..plan };
        let always = FaultPlan { rate: 1.0, ..plan };
        assert!(!never.faults_candidate(1));
        assert!(always.faults_candidate(1));
    }

    #[test]
    fn disabled_plane_injects_nothing() {
        let _guard = PLAN_LOCK.lock().unwrap();
        install(None);
        let _scope = candidate_scope(42);
        assert_eq!(next_solve_fault(), None);
    }

    #[test]
    fn scope_gates_injection_and_restores_on_drop() {
        let _guard = PLAN_LOCK.lock().unwrap();
        install(Some(FaultPlan {
            seed: 1,
            rate: 1.0,
            kind: FaultKind::NanResidual,
            solves: FaultSolves::Index(1),
        }));
        // No scope: no injection even with a plan installed.
        assert_eq!(next_solve_fault(), None);
        {
            let _scope = candidate_scope(7);
            assert_eq!(next_solve_fault(), None); // solve 0
            assert_eq!(next_solve_fault(), Some(FaultKind::NanResidual)); // solve 1
            assert_eq!(next_solve_fault(), None); // solve 2
        }
        assert_eq!(next_solve_fault(), None);
        install(None);
    }

    #[test]
    fn env_plan_parses_rate_seed_and_kind() {
        // Set/remove env vars without other tests observing them: the
        // parse is pure given the values, so just exercise the parser.
        assert_eq!(
            FaultKind::parse("singular"),
            Some(FaultKind::SingularFactor)
        );
        assert_eq!(FaultKind::parse("nan"), Some(FaultKind::NanResidual));
        assert_eq!(
            FaultKind::parse("iters"),
            Some(FaultKind::IterationExhaustion)
        );
        assert_eq!(FaultKind::parse("bogus"), None);
    }
}
