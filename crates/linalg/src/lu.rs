//! Partially pivoted LU factorization, with both an owning API ([`Lu`])
//! and a zero-allocation workspace API ([`LuWorkspace`]) for hot loops
//! that factor and solve the same-sized system thousands of times (the
//! circuit simulator's Newton iterations).

use crate::{FactorError, Matrix};

/// Caller-owned storage for an LU factorization: the combined `L`/`U`
/// factors, the row permutation, and scratch space. Designed for reuse —
/// [`Lu::factor_into`] refactors into the same buffers without allocating,
/// and [`LuWorkspace::solve_into`] solves into a caller-owned vector.
///
/// # Example
///
/// ```
/// use linalg::{Lu, LuWorkspace, Matrix};
///
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
/// let mut ws = LuWorkspace::new(2);
/// let mut x = Vec::new();
/// for _ in 0..3 {
///     Lu::factor_into(&a, &mut ws).expect("non-singular");
///     ws.solve_into(&[2.0, 2.0], &mut x).unwrap(); // no allocation after the first pass
/// }
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LuWorkspace {
    /// Combined factors, row-major `n×n`.
    lu: Vec<f64>,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation.
    sign: f64,
    /// Factored dimension.
    n: usize,
    /// True once `factor_into` has succeeded at the current dimension.
    factored: bool,
    /// Scratch: rows with a nonzero entry in the current pivot column.
    nonzero_rows: Vec<usize>,
    /// Reciprocals of the pivots, computed once during factorization so
    /// neither the elimination nor the solves pay a division per entry.
    inv_diag: Vec<f64>,
    /// Per row, the first column holding a multiplier (`L` entry); `i` when
    /// the row has none. Lets forward substitution skip the structural
    /// zeros of the sparse `L` factor.
    row_start: Vec<usize>,
}

impl LuWorkspace {
    /// Creates a workspace sized for `n×n` systems. The workspace grows
    /// automatically if later used with a larger matrix.
    pub fn new(n: usize) -> Self {
        LuWorkspace {
            lu: vec![0.0; n * n],
            perm: (0..n).collect(),
            sign: 1.0,
            n,
            factored: false,
            nonzero_rows: Vec::with_capacity(n),
            inv_diag: vec![0.0; n],
            row_start: (0..n).collect(),
        }
    }

    /// Dimension of the (last) factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Resizes the internal buffers for an `n×n` system without shrinking
    /// capacity, invalidating any previous factorization.
    fn reset(&mut self, n: usize) {
        self.n = n;
        self.factored = false;
        self.lu.clear();
        self.lu.resize(n * n, 0.0);
        self.perm.clear();
        self.perm.extend(0..n);
        self.sign = 1.0;
        self.inv_diag.clear();
        self.inv_diag.resize(n, 0.0);
        self.row_start.clear();
        self.row_start.extend(0..n);
    }

    /// Solves `A·x = b` using the stored factorization, writing into `x`
    /// (which is resized, reusing its capacity).
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if `b.len()` differs from the
    /// factored dimension, or if no successful factorization is stored.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), FactorError> {
        let n = self.n;
        if !self.factored || b.len() != n {
            return Err(FactorError::Shape {
                rows: b.len(),
                cols: n,
            });
        }
        x.clear();
        x.extend(self.perm.iter().map(|&i| b[i]));
        self.solve_permuted_in_place(x);
        Ok(())
    }

    /// Solves `A·x = b` where `x` enters holding `b` *already permuted* by
    /// the row permutation. Forward then backward substitution, allocation
    /// free.
    fn solve_permuted_in_place(&self, x: &mut [f64]) {
        let n = self.n;
        // Forward substitution with the unit lower factor. `row_start`
        // bounds each row's multipliers, so the structural zeros of the
        // sparse `L` factor cost nothing.
        for i in 1..n {
            let start = self.row_start[i];
            if start >= i {
                continue;
            }
            let (head, tail) = x.split_at_mut(i);
            let row = &self.lu[i * n + start..i * n + i];
            let mut s = tail[0];
            for (&l, xv) in row.iter().zip(head[start..].iter()) {
                s -= l * xv;
            }
            tail[0] = s;
        }
        // Back substitution with the upper factor.
        for i in (0..n).rev() {
            let (head, tail) = x.split_at_mut(i + 1);
            let row = &self.lu[i * n + i + 1..(i + 1) * n];
            let mut s = head[i];
            for (&u, xv) in row.iter().zip(tail.iter()) {
                s -= u * xv;
            }
            head[i] = s * self.inv_diag[i];
        }
    }

    /// Determinant of the factored matrix.
    ///
    /// # Panics
    ///
    /// Panics if no successful factorization is stored.
    pub fn det(&self) -> f64 {
        assert!(self.factored, "no factorization stored");
        let mut d = self.sign;
        for i in 0..self.n {
            d *= self.lu[i * self.n + i];
        }
        d
    }
}

/// LU factorization with partial pivoting: `P·A = L·U`.
///
/// This is the workhorse solver for the circuit simulator's MNA systems,
/// which are square, generally non-symmetric, and small (tens to a few
/// hundred unknowns).
///
/// # Example
///
/// ```
/// use linalg::{Lu, Matrix};
///
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]); // needs pivoting
/// let lu = Lu::factor(&a).expect("non-singular");
/// let x = lu.solve(&[2.0, 2.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

/// Pivots smaller than this (relative to the largest pivot seen) are treated
/// as singular.
const PIVOT_EPS: f64 = 1e-300;

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] for non-square input and
    /// [`FactorError::Singular`] when a pivot collapses to (near) zero.
    pub fn factor(a: &Matrix) -> Result<Self, FactorError> {
        let mut ws = LuWorkspace::new(a.rows());
        Lu::factor_into(a, &mut ws)?;
        Ok(Lu {
            lu: Matrix::from_vec(ws.n, ws.n, ws.lu),
            perm: ws.perm,
            sign: ws.sign,
        })
    }

    /// Factors a square matrix into caller-owned storage, allocating
    /// nothing once the workspace has the right capacity. This is the hot
    /// path of the circuit simulator's Newton loop, which refactors a
    /// same-sized system every iteration.
    ///
    /// The elimination performs the same operations in the same order as
    /// [`Lu::factor`], so the two paths produce bit-identical factors.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] for non-square input and
    /// [`FactorError::Singular`] when a pivot collapses to (near) zero.
    pub fn factor_into(a: &Matrix, ws: &mut LuWorkspace) -> Result<(), FactorError> {
        if a.rows() != a.cols() {
            return Err(FactorError::Shape {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        ws.reset(n);
        ws.lu.copy_from_slice(a.as_slice());
        ws.eliminate()
    }

    /// Like [`Lu::factor_into`], but *consumes the matrix storage*: `a`'s
    /// buffer becomes the factor storage (no `n²` copy at all) and `a` is
    /// handed the workspace's previous buffer, reshaped to the same size
    /// and zero-filled. The intended rhythm is the Newton loop's: the
    /// caller re-assembles `a` from scratch every iteration anyway, so
    /// donating its storage costs nothing.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Lu::factor_into`].
    pub fn factor_in_place(a: &mut Matrix, ws: &mut LuWorkspace) -> Result<(), FactorError> {
        if a.rows() != a.cols() {
            return Err(FactorError::Shape {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        ws.reset(n);
        // O(1) storage swap: the stamped values become ws.lu, and the old
        // factor buffer (already n²-sized and zeroed by `reset`) goes back
        // to the caller.
        let buf = std::mem::take(&mut ws.lu);
        let stamped = std::mem::replace(a, Matrix::from_vec(n, n, buf));
        ws.lu = stamped.into_vec();
        ws.eliminate()
    }
}

impl LuWorkspace {
    /// Partial-pivoting elimination over the dimension-`n` system already
    /// loaded into `self.lu`.
    fn eliminate(&mut self) -> Result<(), FactorError> {
        let ws = self;
        let n = ws.n;
        let lu = &mut ws.lu[..n * n];
        let nonzero_rows = &mut ws.nonzero_rows;

        for k in 0..n {
            // One strided pass over column k does double duty: it finds the
            // pivot *and* records which rows have a nonzero entry. Column
            // access in a row-major layout is the cache-hostile part of
            // dense LU, and MNA systems are sparse — eliminating only the
            // recorded rows afterwards skips both the second column scan
            // and the per-zero-row division of the textbook loop.
            nonzero_rows.clear();
            let diag = lu[k * n + k];
            let mut p = k;
            let mut max = diag.abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k];
                if v != 0.0 {
                    nonzero_rows.push(i);
                    if v.abs() > max {
                        max = v.abs();
                        p = i;
                    }
                }
            }
            if !(max > PIVOT_EPS) {
                return Err(FactorError::Singular { pivot: k });
            }
            if p != k {
                ws.perm.swap(p, k);
                ws.sign = -ws.sign;
                // p > k always, so the two row slices are disjoint.
                let (top, bottom) = lu.split_at_mut(p * n);
                top[k * n..k * n + n].swap_with_slice(&mut bottom[..n]);
                // The accumulated multipliers swap along with the rows.
                ws.row_start.swap(p, k);
                // Row p now holds the old row k, whose column-k entry was
                // `diag`; drop it from the elimination set if that is zero.
                if diag == 0.0 {
                    nonzero_rows.retain(|&i| i != p);
                }
            }
            let inv_pivot = 1.0 / lu[k * n + k];
            ws.inv_diag[k] = inv_pivot;
            let (top, bottom) = lu.split_at_mut((k + 1) * n);
            let row_k = &top[k * n + k + 1..k * n + n];
            for &i in nonzero_rows.iter() {
                let row_i = &mut bottom[(i - k - 1) * n..(i - k) * n];
                let aik = row_i[k];
                // A swap may have zeroed an entry recorded as nonzero.
                if aik == 0.0 {
                    continue;
                }
                let m = aik * inv_pivot;
                row_i[k] = m;
                if ws.row_start[i] > k {
                    ws.row_start[i] = k;
                }
                for (x, &u) in row_i[k + 1..].iter_mut().zip(row_k) {
                    *x -= m * u;
                }
            }
        }
        ws.factored = true;
        Ok(())
    }
}

impl Lu {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`, validating the right-hand side first.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if `b.len()` differs from the
    /// factored dimension.
    pub fn try_solve(&self, b: &[f64]) -> Result<Vec<f64>, FactorError> {
        if b.len() != self.dim() {
            return Err(FactorError::Shape {
                rows: b.len(),
                cols: self.dim(),
            });
        }
        Ok(self.solve_unchecked(b))
    }

    /// Solves `A·X = B` column by column, validating the shape first.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if `b.rows()` differs from the
    /// factored dimension.
    pub fn try_solve_matrix(&self, b: &Matrix) -> Result<Matrix, FactorError> {
        if b.rows() != self.dim() {
            return Err(FactorError::Shape {
                rows: b.rows(),
                cols: b.cols(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col: Vec<f64> = (0..b.rows()).map(|i| b[(i, j)]).collect();
            let x = self.solve_unchecked(&col);
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension; use
    /// [`Lu::try_solve`] for a checked variant.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(
            b.len(),
            self.dim(),
            "rhs length must equal matrix dimension"
        );
        self.solve_unchecked(b)
    }

    fn solve_unchecked(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit lower factor.
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Back substitution with upper factor.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows()` differs from the factored dimension; use
    /// [`Lu::try_solve_matrix`] for a checked variant.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        self.try_solve_matrix(b)
            .expect("rhs rows must equal matrix dimension")
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_simple_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        let b = [3.0, 5.0];
        let x = lu.solve(&b);
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(FactorError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(FactorError::Shape { .. })));
    }

    #[test]
    fn determinant_matches_formula() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (3.0 * 6.0 - 8.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivot() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_inverts() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let lu = Lu::factor(&a).unwrap();
        let inv = lu.solve_matrix(&Matrix::identity(2));
        let prod = a.matmul(&inv);
        assert!((&prod - &Matrix::identity(2)).max_abs() < 1e-12);
    }

    #[test]
    fn workspace_factor_matches_owning_path_exactly() {
        let n = 23;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0.5 + (i as f64).sin()
            } else {
                ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5
            }
        });
        let lu = Lu::factor(&a).unwrap();
        let mut ws = LuWorkspace::new(n);
        Lu::factor_into(&a, &mut ws).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let x_owned = lu.solve(&b);
        let mut x_ws = Vec::new();
        ws.solve_into(&b, &mut x_ws).unwrap();
        // The factors are bit-identical (shared elimination); the solves
        // differ only by the workspace's reciprocal-pivot multiply.
        for (a, c) in x_owned.iter().zip(&x_ws) {
            assert!((a - c).abs() <= 1e-13 * a.abs().max(1.0), "{a} vs {c}");
        }
        assert_eq!(lu.det().to_bits(), ws.det().to_bits());
    }

    #[test]
    fn factor_in_place_matches_factor_into_and_returns_buffer() {
        let n = 17;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                3.0 + (j as f64).cos()
            } else if i.abs_diff(j) <= 2 {
                ((i * 7 + j) % 5) as f64 - 2.0
            } else {
                0.0
            }
        });
        let mut ws_ref = LuWorkspace::new(n);
        Lu::factor_into(&a, &mut ws_ref).unwrap();
        let mut ws = LuWorkspace::new(n);
        let mut donated = a.clone();
        Lu::factor_in_place(&mut donated, &mut ws).unwrap();
        // The donated matrix comes back zeroed at the same shape.
        assert_eq!((donated.rows(), donated.cols()), (n, n));
        assert!(donated.as_slice().iter().all(|&v| v == 0.0));
        // Identical factorization.
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let (mut x1, mut x2) = (Vec::new(), Vec::new());
        ws_ref.solve_into(&b, &mut x1).unwrap();
        ws.solve_into(&b, &mut x2).unwrap();
        assert_eq!(x1, x2);
        // Non-square input is rejected without touching the buffers.
        let mut bad = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor_in_place(&mut bad, &mut ws),
            Err(FactorError::Shape { .. })
        ));
        assert_eq!((bad.rows(), bad.cols()), (2, 3));
    }

    #[test]
    fn workspace_is_reusable_across_sizes() {
        let mut ws = LuWorkspace::new(2);
        let mut x = Vec::new();
        for n in [2usize, 5, 3] {
            let a = Matrix::from_fn(n, n, |i, j| if i == j { n as f64 } else { 0.5 });
            Lu::factor_into(&a, &mut ws).unwrap();
            let b = vec![1.0; n];
            ws.solve_into(&b, &mut x).unwrap();
            assert!(residual(&a, &x, &b) < 1e-12);
        }
    }

    #[test]
    fn workspace_rejects_bad_shapes() {
        let mut ws = LuWorkspace::new(3);
        // Solving before factoring is a shape error, not UB.
        assert!(matches!(
            ws.solve_into(&[1.0; 3], &mut Vec::new()),
            Err(FactorError::Shape { .. })
        ));
        let a = Matrix::identity(3);
        Lu::factor_into(&a, &mut ws).unwrap();
        assert!(matches!(
            ws.solve_into(&[1.0; 4], &mut Vec::new()),
            Err(FactorError::Shape { .. })
        ));
        assert!(matches!(
            Lu::factor_into(&Matrix::zeros(2, 3), &mut ws),
            Err(FactorError::Shape { .. })
        ));
        // A failed factorization invalidates the previous one.
        let singular = Matrix::zeros(3, 3);
        assert!(Lu::factor_into(&singular, &mut ws).is_err());
        assert!(ws.solve_into(&[1.0; 3], &mut Vec::new()).is_err());
    }

    #[test]
    fn try_solve_reports_dimension_mismatch() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!(matches!(
            lu.try_solve(&[1.0, 2.0, 3.0]),
            Err(FactorError::Shape { .. })
        ));
        assert!(matches!(
            lu.try_solve_matrix(&Matrix::zeros(3, 2)),
            Err(FactorError::Shape { .. })
        ));
        assert!(lu.try_solve(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn large_diagonally_dominant_system() {
        let n = 40;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0 + i as f64
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b);
        assert!(residual(&a, &x, &b) < 1e-9);
    }
}
