//! The low-dropout regulator — paper Table V row 3.
//!
//! A 5-transistor NMOS-input error amplifier drives a heavily arrayed PMOS
//! pass device; a resistive divider feeds back half of VOUT against a
//! fixed reference. Rail decoupling arrays emulate the arrayed instances
//! behind the paper's 167k device count ("the number of devices is high
//! due to arrayed instances used by the analog engineer").
//!
//! Nine constraints, as in the paper's description (PSRR, gain margin,
//! phase margin, DC gain, GBW, plus regulation/quiescent specs). Loop-gain
//! measurements use the two-step break-the-loop method: a closed-loop
//! operating point pins the feedback voltage, then an open-loop replica is
//! driven at that bias to sweep the loop transmission.

use opt::{SizingProblem, SpecResult};
use spice::{Circuit, SimOptions, SpiceError, Waveform, GND};

use crate::measure;
use crate::parasitics::{apply_parasitics, update_parasitics, ParasiticConfig};
use crate::tech::{tech_advanced, Corner, CornerSet, Technology};

/// The LDO sizing problem (10 variables — ~6 critical — and 9 constraints).
#[derive(Debug, Clone)]
pub struct Ldo {
    tech: Technology,
    opts: SimOptions,
    parasitics: ParasiticConfig,
    /// Regulation target \[V\] (bandgap-derived: does *not* track the
    /// corner supply — exactly why low-supply corners stress the design).
    vout_target: f64,
    /// Reference voltage \[V\] (half of the target; divider ratio 2).
    vref: f64,
    /// Nominal and light load currents \[A\].
    i_load: (f64, f64),
    /// Output capacitor \[F\].
    c_out: f64,
    /// Prebuilt closed-loop topology; per-candidate evaluation clones it
    /// and re-sizes devices, load and parasitics in place.
    template_closed: Circuit,
    /// Prebuilt broken-loop topology (feedback input driven by `VFBDRV`).
    template_open: Circuit,
    /// Node ids `(vout, vfb)` in the closed-loop template.
    nodes_closed: (usize, usize),
    /// Node ids `(vout, vfb)` in the broken-loop template (the extra
    /// `fb_drive` node shifts them).
    nodes_open: (usize, usize),
    /// The PVT scenario plane this instance evaluates across.
    corners: CornerSet,
    /// Evaluation planes for `corners[1..]` (plane 0 is this instance).
    extra_planes: Vec<Ldo>,
}

impl Default for Ldo {
    fn default() -> Self {
        Self::new()
    }
}

impl Ldo {
    /// Creates the problem on the generic advanced-node technology at the
    /// nominal corner only (the legacy single-scenario plane).
    pub fn new() -> Self {
        Self::with_corners(CornerSet::nominal())
    }

    /// Creates the problem evaluating every candidate across a PVT corner
    /// set (see [`crate::tech::CornerSet`]). The regulation target and
    /// reference stay absolute (bandgap-referenced) while the supply and
    /// device cards derate per corner; corner 0 of every standard set is
    /// nominal and bit-identical to [`Ldo::new`].
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or a template fails to build.
    pub fn with_corners(corners: CornerSet) -> Self {
        let (mut base, extras) = corners.split_planes(Self::build_plane);
        base.corners = corners;
        base.extra_planes = extras;
        base
    }

    /// Builds one single-corner evaluation plane.
    fn build_plane(corner: &Corner) -> Ldo {
        let mut ldo = Ldo {
            tech: tech_advanced().at_corner(corner),
            opts: corner.options(&SimOptions::default()),
            parasitics: ParasiticConfig::default(),
            vout_target: 0.55,
            vref: 0.275,
            i_load: (5e-3, 0.5e-3),
            c_out: 100e-12,
            template_closed: Circuit::new(),
            template_open: Circuit::new(),
            nodes_closed: (0, 0),
            nodes_open: (0, 0),
            corners: CornerSet::single(*corner),
            extra_planes: Vec::new(),
        };
        let (closed, vout, vfb) = ldo
            .build_topology(false)
            .expect("LDO closed-loop template must build");
        let (open, vout_o, vfb_o) = ldo
            .build_topology(true)
            .expect("LDO broken-loop template must build");
        ldo.template_closed = closed;
        ldo.template_open = open;
        ldo.nodes_closed = (vout, vfb);
        ldo.nodes_open = (vout_o, vfb_o);
        ldo
    }

    /// The scenario plane this instance evaluates across.
    pub fn corners(&self) -> &CornerSet {
        &self.corners
    }

    /// The evaluation plane of corner `k` (0 = this instance).
    fn plane(&self, k: usize) -> &Ldo {
        if k == 0 {
            self
        } else {
            &self.extra_planes[k - 1]
        }
    }

    /// A hand-tuned near-feasible design.
    ///
    /// Layout: `[w_ea, l_ea, w_mir, m_pass, cc, r1, w_tail, w_decap,
    /// l_decap, w_dummy]`.
    pub fn nominal(&self) -> Vec<f64> {
        let u = 1e-6;
        vec![
            4.0 * u, // error-amp input pair width
            0.1 * u, // error-amp input pair length
            2.0 * u, // error-amp PMOS mirror width
            2000.0,  // pass-device fingers
            2.0e-12, // compensation cap
            100e3,   // divider top resistor
            4.0 * u, // error-amp tail width
            1.0 * u, // decap width  (non-critical)
            0.1 * u, // decap length (non-critical)
            0.3 * u, // dummy width  (non-critical)
        ]
    }

    /// Builds the regulator topology once, with the nominal sizing applied
    /// (the sizing itself lives exclusively in [`Ldo::resize`]).
    /// `broken_loop`: the loop is cut at the error-amp feedback input,
    /// which is instead driven by the `VFBDRV` source (re-biased per
    /// candidate by [`Ldo::build`]).
    fn build_topology(&self, broken_loop: bool) -> Result<(Circuit, usize, usize), SpiceError> {
        let t = &self.tech;
        let l = t.l_min;
        let u = 1e-6;
        let i_load = self.i_load.0;
        let fb_drive = if broken_loop {
            Some((self.vref, 1.0))
        } else {
            None
        };
        let (w_ea, l_ea, w_mir, m_pass, cc, r1, w_tail) = (u, l, u, 1.0, 1e-12, 100e3, u);
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, GND, Waveform::Dc(t.vdd))?;
        let vref = ckt.node("vref");
        ckt.add_vsource("VREF", vref, GND, Waveform::Dc(self.vref))?;

        // Error amplifier: NMOS pair (A = feedback side with diode load,
        // B = reference side with mirror output).
        let tail = ckt.node("ea_tail");
        let d_a = ckt.node("ea_da");
        let ea_out = ckt.node("ea_out");
        let vbn = ckt.node("vbn");
        ckt.add_mosfet("MB_n1", vbn, vbn, GND, GND, &t.nmos, 1e-6, 0.1e-6, 1.0)?;
        ckt.add_isource("IB1", vdd, vbn, Waveform::Dc(20e-6))?;
        ckt.add_mosfet("M_tail", tail, vbn, GND, GND, &t.nmos, w_tail, 0.1e-6, 2.0)?;
        let fb_in = match fb_drive {
            None => ckt.node("vfb"),
            Some((dc, ac)) => {
                let n = ckt.node("fb_drive");
                ckt.add_vsource_ac("VFBDRV", n, GND, Waveform::Dc(dc), ac)?;
                n
            }
        };
        ckt.add_mosfet("M_eaA", d_a, fb_in, tail, GND, &t.nmos, w_ea, l_ea, 1.0)?;
        ckt.add_mosfet("M_eaB", ea_out, vref, tail, GND, &t.nmos, w_ea, l_ea, 1.0)?;
        ckt.add_mosfet("M_mirD", d_a, d_a, vdd, vdd, &t.pmos, w_mir, 0.1e-6, 1.0)?;
        ckt.add_mosfet("M_mirO", ea_out, d_a, vdd, vdd, &t.pmos, w_mir, 0.1e-6, 1.0)?;

        // Pass device and output network.
        let vout = ckt.node("vout");
        ckt.add_mosfet("M_pass", vout, ea_out, vdd, vdd, &t.pmos, 0.3e-6, l, m_pass)?;
        ckt.add_capacitor("CC", ea_out, vout, cc)?;
        ckt.add_capacitor("COUT", vout, GND, self.c_out)?;
        ckt.add_isource("ILOAD", vout, GND, Waveform::Dc(i_load))?;
        // Divider: vfb node always exists; in open-loop builds it is the
        // return-signal tap (loaded by the divider exactly as closed loop).
        let vfb_tap = ckt.node("vfb");
        ckt.add_resistor("R1", vout, vfb_tap, r1)?;
        ckt.add_resistor("R2", vfb_tap, GND, 100e3)?;

        // Arrayed decoupling (the device-count emulation) and a dummy.
        ckt.add_mosfet("M_decap1", GND, vdd, GND, GND, &t.nmos, u, l, 82_300.0)?;
        ckt.add_mosfet("M_decap2", GND, vout, GND, GND, &t.nmos, u, l, 82_300.0)?;
        ckt.add_mosfet("M_dummy", vout, GND, GND, GND, &t.nmos, u, l, 1.0)?;
        self.resize(&mut ckt, &self.nominal())?;
        apply_parasitics(&mut ckt, &self.parasitics)?;
        let vout_id = ckt.find_node("vout")?;
        let vfb_id = ckt.find_node("vfb")?;
        Ok((ckt, vout_id, vfb_id))
    }

    /// Writes every design-dependent device value for the vector `x` —
    /// the single source of truth for the variable→device mapping.
    fn resize(&self, ckt: &mut Circuit, x: &[f64]) -> Result<(), SpiceError> {
        let l = self.tech.l_min;
        let (w_ea, l_ea, w_mir, m_pass, cc, r1, w_tail) = (
            x[0],
            x[1].max(l),
            x[2],
            x[3].round().max(1.0),
            x[4],
            x[5],
            x[6],
        );
        ckt.set_mosfet_geometry("M_tail", w_tail, 0.1e-6, 2.0)?;
        ckt.set_mosfet_geometry("M_eaA", w_ea, l_ea, 1.0)?;
        ckt.set_mosfet_geometry("M_eaB", w_ea, l_ea, 1.0)?;
        ckt.set_mosfet_geometry("M_mirD", w_mir, 0.1e-6, 1.0)?;
        ckt.set_mosfet_geometry("M_mirO", w_mir, 0.1e-6, 1.0)?;
        ckt.set_mosfet_geometry("M_pass", 0.3e-6, l, m_pass)?;
        ckt.set_capacitance("CC", cc)?;
        ckt.set_resistance("R1", r1)?;
        ckt.set_mosfet_geometry("M_decap1", x[7], x[8].max(l), 82_300.0)?;
        ckt.set_mosfet_geometry("M_decap2", x[7], x[8].max(l), 82_300.0)?;
        ckt.set_mosfet_geometry("M_dummy", x[9], l, 1.0)?;
        Ok(())
    }

    /// Instantiates a candidate: clones the matching prebuilt template and
    /// re-sizes devices, load current, feedback drive and parasitics in
    /// place (no netlist rebuild; the topology fingerprint is unchanged so
    /// pooled solver state carries across candidates).
    fn build(
        &self,
        x: &[f64],
        i_load: f64,
        fb_drive: Option<(f64, f64)>,
    ) -> Result<(Circuit, usize, usize), SpiceError> {
        let (mut ckt, nodes) = match fb_drive {
            None => (self.template_closed.clone(), self.nodes_closed),
            Some(_) => (self.template_open.clone(), self.nodes_open),
        };
        self.resize(&mut ckt, x)?;
        ckt.set_source_dc("ILOAD", i_load)?;
        if let Some((dc, ac)) = fb_drive {
            ckt.set_source_dc("VFBDRV", dc)?;
            ckt.set_ac_mag("VFBDRV", ac)?;
        }
        update_parasitics(&mut ckt, &self.parasitics)?;
        Ok((ckt, nodes.0, nodes.1))
    }

    /// Expanded MOS count (array-aware), ~167k as in the paper's Table V.
    pub fn device_count(&self) -> f64 {
        let x = self.nominal();
        self.build(&x, self.i_load.0, None)
            .map(|(c, _, _)| c.expanded_mosfet_count())
            .unwrap_or(0.0)
    }
}

impl SizingProblem for Ldo {
    fn dim(&self) -> usize {
        10
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let u = 1e-6;
        (
            vec![
                0.5 * u,
                0.02 * u,
                0.5 * u,
                200.0,
                0.2e-12,
                50e3,
                0.5 * u,
                0.1 * u,
                0.02 * u,
                0.1 * u,
            ],
            vec![
                20.0 * u,
                0.5 * u,
                20.0 * u,
                20000.0,
                10e-12,
                200e3,
                20.0 * u,
                8.0 * u,
                0.5 * u,
                8.0 * u,
            ],
        )
    }

    fn num_constraints(&self) -> usize {
        9
    }

    fn name(&self) -> &str {
        "ldo"
    }

    fn variable_names(&self) -> Vec<String> {
        [
            "w_ea", "l_ea", "w_mir", "m_pass", "cc", "r1", "w_tail", "w_decap", "l_decap",
            "w_dummy",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn nominal(&self) -> Vec<f64> {
        self.nominal()
    }

    fn num_corners(&self) -> usize {
        self.corners.len()
    }

    fn corner_name(&self, k: usize) -> String {
        self.corners.corners[k].label()
    }

    fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
        // Deterministic fault-plane scope, keyed by candidate bits × corner.
        let _scope = spice::fault::candidate_scope(spice::fault::candidate_key(x, k as u64));
        self.plane(k).evaluate_plane(x)
    }

    fn evaluate(&self, x: &[f64]) -> SpecResult {
        opt::evaluate_worst_case(self, x)
    }
}

impl Ldo {
    /// Runs the full measurement suite on this plane's corner — the
    /// single-scenario evaluation every corner of the plane shares.
    fn evaluate_plane(&self, x: &[f64]) -> SpecResult {
        let m = SizingProblem::num_constraints(self);
        // Closed-loop operating points at nominal and light load.
        let (ckt_nom, vout, vfb) = match self.build(x, self.i_load.0, None) {
            Ok(v) => v,
            Err(e) => return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ldo netlist")),
        };
        // One pooled workspace per loop topology: both closed-loop solves
        // (and later candidates) reuse the same recorded solver state.
        let mut ws = spice::lease_workspace(&ckt_nom);
        let op_nom = match spice::op_with_workspace(&ckt_nom, &self.opts, None, &mut ws) {
            Ok(op) => op,
            Err(e) => return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ldo op")),
        };
        let (ckt_lt, vout_lt, _) = match self.build(x, self.i_load.1, None) {
            Ok(v) => v,
            Err(e) => {
                return SpecResult::failed_with(
                    m,
                    crate::diag_from_spice(&e, "ldo light-load netlist"),
                )
            }
        };
        let op_lt = match spice::op_with_workspace(&ckt_lt, &self.opts, None, &mut ws) {
            Ok(op) => op,
            Err(e) => {
                return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ldo light-load op"))
            }
        };
        let v_nom = op_nom.voltage(vout);
        let v_lt = op_lt.voltage(vout_lt);
        let vout_err = (v_nom - self.vout_target).abs();
        let regulation = (v_nom - v_lt).abs();
        // Quiescent current: total supply current minus the load.
        let iq = match op_lt.source_current(&ckt_lt, "VDD") {
            Ok(i) => (-i - self.i_load.1).abs(),
            Err(e) => return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ldo iq")),
        };

        // PSRR (closed loop) at nominal load.
        let mut ckt_ps = ckt_nom.clone();
        let _ = ckt_ps.set_ac_mag("VDD", 1.0);
        let freqs = spice::log_freqs(1e2, 1e9, 4);
        // Re-sized AC magnitudes leave the topology fingerprint unchanged,
        // so the sweep reuses `ws`'s recorded complex pattern.
        let ac_ps = match spice::ac_with_workspace(&ckt_ps, &self.opts, &op_nom, &freqs, &mut ws) {
            Ok(ac) => ac,
            Err(e) => return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ldo psrr ac")),
        };
        let psrr_10k = -measure::db(measure::sample_response(
            &freqs,
            &ac_ps.magnitude(vout),
            10e3,
        ));

        // Loop gain: break the loop at the error-amp feedback input, hold
        // the bias, sweep.
        let vfb_dc = op_nom.voltage(vfb);
        let (ckt_ol, vout_ol, vfb_ol) = match self.build(x, self.i_load.0, Some((vfb_dc, 1.0))) {
            Ok(v) => v,
            Err(e) => {
                return SpecResult::failed_with(
                    m,
                    crate::diag_from_spice(&e, "ldo open-loop netlist"),
                )
            }
        };
        let mut ws_ol = spice::lease_workspace(&ckt_ol);
        let op_ol = match spice::op_with_workspace(&ckt_ol, &self.opts, None, &mut ws_ol) {
            Ok(op) => op,
            Err(e) => {
                return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ldo open-loop op"))
            }
        };
        let _ = vout_ol;
        let lfreqs = spice::log_freqs(1e2, 1e9, 6);
        let ac_l = match spice::ac_with_workspace(&ckt_ol, &self.opts, &op_ol, &lfreqs, &mut ws_ol)
        {
            Ok(ac) => ac,
            Err(e) => return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ldo loop ac")),
        };
        // Loop transmission L = v(tap); negate for the standard phase
        // reference (negative feedback -> arg(-L) starts near 0).
        let lmag: Vec<f64> = (0..lfreqs.len())
            .map(|i| ac_l.voltage(i, vfb_ol).abs())
            .collect();
        let lphase =
            measure::unwrap_phases((0..lfreqs.len()).map(|i| (-ac_l.voltage(i, vfb_ol)).arg()));
        let dc_gain_db = measure::db(lmag[0]);
        let pm = measure::phase_margin(&lfreqs, &lmag, &lphase);
        let gm_db = measure::gain_margin_db(&lfreqs, &lmag, &lphase);
        let gbw = measure::unity_gain_frequency(&lfreqs, &lmag);

        // Output noise at vout, closed loop (same topology as the PSRR
        // sweep, so the adjoint reuses the recorded pattern in `ws`).
        let noise_rms = spice::noise_with_workspace(
            &ckt_nom,
            &self.opts,
            &op_nom,
            vout,
            GND,
            &spice::log_freqs(1e1, 1e7, 3),
            &mut ws,
        )
        .map(|n| n.total_rms())
        .unwrap_or(f64::INFINITY);

        let constraints = vec![
            // 1. Output accuracy < 10 mV.
            (vout_err - 10e-3) / 10e-3,
            // 2. Load regulation < 15 mV over the 10:1 load step.
            (regulation - 15e-3) / 15e-3,
            // 3. DC loop gain > 40 dB.
            (40.0 - dc_gain_db) / 20.0,
            // 4. Phase margin > 50°.
            match pm {
                Some(p) => (50.0 - p) / 30.0,
                None => 2.0,
            },
            // 5. Gain margin > 10 dB.
            match gm_db {
                Some(g) => (10.0 - g) / 10.0,
                None => -1.0, // phase never reaches 180°: unconditionally stable
            },
            // 6. Loop GBW > 2 MHz.
            match gbw {
                Some(f) => (2e6 - f) / 2e6,
                None => 2.0,
            },
            // 7. PSRR at 10 kHz > 30 dB.
            (30.0 - psrr_10k) / 20.0,
            // 8. Quiescent current < 200 µA.
            (iq - 200e-6) / 200e-6,
            // 9. Output noise < 10 mV rms (flicker-dominated at this
            // technology card's KF; see EXPERIMENTS.md calibration note).
            (noise_rms - 10e-3) / 10e-3,
        ];
        SpecResult {
            failure: None,
            objective: iq,
            constraints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_constraints_ten_vars() {
        let ldo = Ldo::new();
        assert_eq!(ldo.dim(), 10);
        assert_eq!(ldo.num_constraints(), 9);
    }

    #[test]
    fn device_count_matches_paper_scale() {
        let ldo = Ldo::new();
        let n = ldo.device_count();
        assert!(n > 150_000.0 && n < 180_000.0, "count {n}");
    }

    #[test]
    fn nominal_regulates() {
        let ldo = Ldo::new();
        let spec = ldo.evaluate(&ldo.nominal());
        assert!(!spec.is_failure(), "nominal LDO must simulate");
        // The regulation constraints are the core function.
        assert!(
            spec.constraints[0] <= 0.0,
            "vout accuracy violated: {}",
            spec.constraints[0]
        );
        assert!(
            spec.constraints[1] <= 0.0,
            "load regulation violated: {}",
            spec.constraints[1]
        );
    }

    #[test]
    fn nominal_corner_is_bit_identical_to_legacy_path() {
        let legacy = Ldo::new();
        let cornered = Ldo::with_corners(CornerSet::pvt5());
        let x = legacy.nominal();
        let a = legacy.evaluate(&x);
        let b = cornered.evaluate_corner(&x, 0);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        for (p, q) in a.constraints.iter().zip(&b.constraints) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn five_corner_plane_evaluates_everywhere() {
        let ldo = Ldo::with_corners(CornerSet::pvt5());
        assert_eq!(ldo.num_corners(), 5);
        let x = ldo.nominal();
        for k in 0..ldo.num_corners() {
            let spec = ldo.evaluate_corner(&x, k);
            assert_eq!(spec.constraints.len(), 9);
            assert!(
                !spec.is_failure(),
                "corner {} must simulate",
                ldo.corner_name(k)
            );
        }
        let worst = ldo.evaluate(&x);
        assert!(!worst.is_failure());
        let nom = ldo.evaluate_corner(&x, 0);
        for (w, n) in worst.constraints.iter().zip(&nom.constraints) {
            assert!(w >= n, "worst case can only tighten: {w} < {n}");
        }
    }

    #[test]
    fn wrong_divider_cannot_regulate() {
        let ldo = Ldo::new();
        let mut x = ldo.nominal();
        // r1 at its maximum makes the target output 0.275·(1 + 200k/100k)
        // = 0.825 V — above what the supply can deliver, so the accuracy
        // constraint must fail.
        x[5] = 200e3;
        let spec = ldo.evaluate(&x);
        assert!(
            spec.constraints[0] > 0.0,
            "vout accuracy should fail: {}",
            spec.constraints[0]
        );
    }
}
