//! AC small-signal analysis.
//!
//! The circuit is linearized at a DC operating point; at each frequency the
//! complex system `(G + jωC)·x = b` is solved, where `G` holds the
//! small-signal conductances (gm/gds/gmb of each MOSFET plus resistors and
//! controlled sources), `C` the constant capacitances, and `b` the AC
//! magnitudes of the independent sources.
//!
//! The sweep runs on the pooled frequency-domain workspace: the sparsity
//! pattern of `G + jωC` is fixed by the topology (ω only scales values), so
//! the pattern and stamp→slot map are recorded once, the first point runs a
//! pivoting sparse factorization, and every further point pays slot-map
//! assembly plus a scan-free refactorization. Small or dense systems fall
//! back to the dense complex LU, which factors into a reusable workspace —
//! no per-point matrix clone on either path.

use linalg::C64;

use crate::analysis::dc::OpPoint;
use crate::error::SpiceError;
use crate::netlist::{Circuit, Device, NodeId};
use crate::options::SimOptions;
use crate::stamp::{AssembleComplex, ComplexStamp};
use crate::workspace::{lease_workspace, NewtonWorkspace};

/// Result of an AC sweep: complex node voltages per frequency.
#[derive(Debug, Clone)]
pub struct AcSweep {
    freqs: Vec<f64>,
    /// `v[f][node]` — complex node voltage; index 0 is ground (always 0).
    v: Vec<Vec<C64>>,
}

impl AcSweep {
    /// The frequency grid \[Hz\].
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex voltage of `node` at frequency index `fi`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn voltage(&self, fi: usize, node: NodeId) -> C64 {
        self.v[fi][node]
    }

    /// Differential voltage `v(p) − v(n)` at frequency index `fi`.
    pub fn diff_voltage(&self, fi: usize, p: NodeId, n: NodeId) -> C64 {
        self.v[fi][p] - self.v[fi][n]
    }

    /// Magnitude response of a node over the whole sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        self.v.iter().map(|vf| vf[node].abs()).collect()
    }

    /// Magnitude response of `v(p) − v(n)` over the whole sweep.
    pub fn diff_magnitude(&self, p: NodeId, n: NodeId) -> Vec<f64> {
        self.v.iter().map(|vf| (vf[p] - vf[n]).abs()).collect()
    }

    /// Phase (radians, unwrapped) of `v(p) − v(n)` over the whole sweep.
    ///
    /// Unwrapping removes 2π jumps so phase-margin computations can
    /// interpolate safely.
    pub fn diff_phase_unwrapped(&self, p: NodeId, n: NodeId) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.v.len());
        let mut prev = 0.0;
        let mut offset = 0.0;
        for (i, vf) in self.v.iter().enumerate() {
            let raw = (vf[p] - vf[n]).arg();
            if i > 0 {
                let mut d = raw + offset - prev;
                while d > std::f64::consts::PI {
                    offset -= 2.0 * std::f64::consts::PI;
                    d = raw + offset - prev;
                }
                while d < -std::f64::consts::PI {
                    offset += 2.0 * std::f64::consts::PI;
                    d = raw + offset - prev;
                }
            }
            prev = raw + offset;
            out.push(prev);
        }
        out
    }
}

/// Builds a log-spaced frequency grid from `f_start` to `f_stop` with
/// `points_per_decade` points per decade (endpoints included).
///
/// # Panics
///
/// Panics if the range or density is non-positive.
pub fn log_freqs(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start, "invalid frequency range");
    assert!(points_per_decade > 0, "need at least one point per decade");
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|i| f_start * 10f64.powf(decades * i as f64 / (n - 1) as f64))
        .collect()
}

/// One small-signal assembly pass, generic over the complex stamp sink
/// (dense rows, write recorder, or CSC slot map — each monomorphized).
/// Captures the linearization point and ω; `zero_sources` quiesces the
/// independent-source excitation (used by the noise adjoint solver, whose
/// right-hand side is the output selector instead).
pub(crate) struct SmallSignalAssembler<'a> {
    pub(crate) circuit: &'a Circuit,
    pub(crate) op: &'a OpPoint,
    pub(crate) opts: &'a SimOptions,
    pub(crate) omega: f64,
    pub(crate) zero_sources: bool,
}

impl AssembleComplex for SmallSignalAssembler<'_> {
    fn assemble<S: ComplexStamp>(&mut self, st: &mut S) {
        assemble_small_signal(
            self.circuit,
            self.op,
            self.opts,
            self.omega,
            self.zero_sources,
            st,
        );
    }
}

/// Assembles the small-signal system at angular frequency `omega` with
/// source excitation taken from the devices' `ac_mag` fields (or zeroed when
/// `zero_sources` — used by the noise adjoint solver). The sink must be
/// zeroed by the caller; the write sequence is identical for every ω, which
/// is what makes the recorded slot map valid across a sweep.
pub(crate) fn assemble_small_signal<S: ComplexStamp>(
    circuit: &Circuit,
    op: &OpPoint,
    opts: &SimOptions,
    omega: f64,
    zero_sources: bool,
    st: &mut S,
) {
    st.load_gmin(opts.gmin);
    for dev in circuit.devices() {
        match dev {
            Device::Resistor { a, b, g, .. } => st.admittance(*a, *b, C64::real(*g)),
            Device::Capacitor { a, b, c, .. } => st.admittance(*a, *b, C64::new(0.0, omega * c)),
            Device::VSource {
                p,
                n,
                ac_mag,
                branch,
                ..
            } => {
                let v = if zero_sources { 0.0 } else { *ac_mag };
                st.vsource(*branch, *p, *n, C64::real(v));
            }
            Device::ISource { p, n, ac_mag, .. } => {
                let i = if zero_sources { 0.0 } else { *ac_mag };
                st.current_source(*p, *n, C64::real(i));
            }
            Device::Vcvs {
                p,
                n,
                cp,
                cn,
                gain,
                branch,
                ..
            } => {
                st.vcvs(*branch, *p, *n, *cp, *cn, *gain);
            }
            Device::Vccs {
                p, n, cp, cn, gm, ..
            } => st.vccs(*p, *n, *cp, *cn, *gm),
            Device::Mosfet {
                name,
                d,
                g,
                s,
                b,
                caps,
                ..
            } => {
                let mop = op
                    .mos_op(name)
                    .expect("operating point must cover every MOSFET");
                st.vccs(*d, *s, *g, *s, mop.gm);
                st.admittance(*d, *s, C64::real(mop.gds));
                st.vccs(*d, *s, *b, *s, mop.gmb);
                st.admittance(*g, *s, C64::new(0.0, omega * caps.cgs));
                st.admittance(*g, *d, C64::new(0.0, omega * caps.cgd));
                st.admittance(*g, *b, C64::new(0.0, omega * caps.cgb));
                st.admittance(*d, *b, C64::new(0.0, omega * caps.cdb));
                st.admittance(*s, *b, C64::new(0.0, omega * caps.csb));
            }
        }
    }
}

/// Runs an AC sweep over the given frequency grid, linearized at `op`,
/// using a workspace leased from the process-wide topology-keyed pool.
///
/// Sources excite the circuit through their `ac_mag` values (set via
/// [`Circuit::add_vsource_ac`] / [`Circuit::add_isource_ac`]).
///
/// # Errors
///
/// Returns [`SpiceError::SingularMatrix`] if the linearized system is
/// singular at some frequency, or [`SpiceError::BadAnalysis`] for an empty
/// grid.
pub fn ac(
    circuit: &Circuit,
    opts: &SimOptions,
    op: &OpPoint,
    freqs: &[f64],
) -> Result<AcSweep, SpiceError> {
    let mut ws = lease_workspace(circuit);
    ac_with_workspace(circuit, opts, op, freqs, &mut ws)
}

/// [`ac`] with an explicit workspace: the sweep reuses the workspace's
/// recorded complex pattern, slot map, and factor storage, so repeated
/// sweeps on one topology (a sizing loop's candidates, or the several AC
/// excitations of one testbench) pay the symbolic analysis once.
///
/// Results are bit-identical whether the workspace is fresh or pooled: the
/// sparse pivot sequence is re-derived from this sweep's own first
/// frequency point, never inherited.
///
/// # Errors
///
/// Same failure modes as [`ac`].
pub fn ac_with_workspace(
    circuit: &Circuit,
    opts: &SimOptions,
    op: &OpPoint,
    freqs: &[f64],
    ws: &mut NewtonWorkspace,
) -> Result<AcSweep, SpiceError> {
    if freqs.is_empty() {
        return Err(SpiceError::BadAnalysis {
            reason: "empty frequency grid".to_string(),
        });
    }
    ws.ensure(circuit);
    ws.begin_session();
    let session = ws.session();
    let n_nodes = circuit.num_nodes();
    let ac_ws = ws.ac_mut(circuit);
    let mut v = Vec::with_capacity(freqs.len());
    let mut x = Vec::new();
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut assembler = SmallSignalAssembler {
            circuit,
            op,
            opts,
            omega,
            zero_sources: false,
        };
        let kernel = ac_ws
            .factor_point(circuit, session, &mut assembler)
            .map_err(|()| SpiceError::SingularMatrix { analysis: "ac" })?;
        if !ac_ws.solve(kernel, &mut x) {
            return Err(SpiceError::SingularMatrix { analysis: "ac" });
        }
        let mut vf = vec![C64::ZERO; n_nodes];
        for (node, vn) in vf.iter_mut().enumerate().skip(1) {
            *vn = x[node - 1];
        }
        v.push(vf);
    }
    Ok(AcSweep {
        freqs: freqs.to_vec(),
        v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GND;
    use crate::waveform::Waveform;

    #[test]
    fn rc_lowpass_magnitude_and_phase() {
        // R = 1k, C = 1uF -> f3dB = 1/(2πRC) ≈ 159.15 Hz.
        let mut c = Circuit::new();
        let a = c.node("in");
        let b = c.node("out");
        c.add_vsource_ac("V1", a, GND, Waveform::Dc(0.0), 1.0)
            .unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_capacitor("C1", b, GND, 1e-6).unwrap();
        let opts = SimOptions::default();
        let op = crate::analysis::dc::op(&c, &opts).unwrap();
        let f3 = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-6);
        let sweep = ac(&c, &opts, &op, &[f3 / 100.0, f3, f3 * 100.0]).unwrap();
        let mag = sweep.magnitude(b);
        assert!((mag[0] - 1.0).abs() < 1e-3, "passband {}", mag[0]);
        assert!(
            (mag[1] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3,
            "-3dB {}",
            mag[1]
        );
        assert!((mag[2] - 0.01).abs() < 2e-4, "stopband {}", mag[2]);
        // Phase at f3dB is -45 degrees.
        let ph = sweep.voltage(1, b).arg().to_degrees();
        assert!((ph + 45.0).abs() < 0.5, "phase {ph}");
    }

    #[test]
    fn vcvs_gain_is_flat() {
        let mut c = Circuit::new();
        let a = c.node("in");
        let b = c.node("out");
        c.add_vsource_ac("V1", a, GND, Waveform::Dc(0.0), 1.0)
            .unwrap();
        c.add_vcvs("E1", b, GND, a, GND, 42.0).unwrap();
        c.add_resistor("RL", b, GND, 1e3).unwrap();
        let opts = SimOptions::default();
        let op = crate::analysis::dc::op(&c, &opts).unwrap();
        let sweep = ac(&c, &opts, &op, &log_freqs(1.0, 1e6, 2)).unwrap();
        for m in sweep.magnitude(b) {
            assert!((m - 42.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_freqs_spacing() {
        let f = log_freqs(1.0, 1000.0, 10);
        assert_eq!(f.len(), 31);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[30] - 1000.0).abs() < 1e-9);
        // Uniform ratio between consecutive points.
        let r0 = f[1] / f[0];
        let r1 = f[16] / f[15];
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn unwrapped_phase_has_no_jumps() {
        // Two-pole RC ladder: phase goes to -180°, which wraps in atan2.
        let mut c = Circuit::new();
        let a = c.node("in");
        let m = c.node("mid");
        let b = c.node("out");
        c.add_vsource_ac("V1", a, GND, Waveform::Dc(0.0), 1.0)
            .unwrap();
        c.add_resistor("R1", a, m, 1e3).unwrap();
        c.add_capacitor("C1", m, GND, 1e-6).unwrap();
        c.add_resistor("R2", m, b, 10e3).unwrap();
        c.add_capacitor("C2", b, GND, 1e-6).unwrap();
        let opts = SimOptions::default();
        let op = crate::analysis::dc::op(&c, &opts).unwrap();
        let sweep = ac(&c, &opts, &op, &log_freqs(1.0, 1e6, 20)).unwrap();
        let ph = sweep.diff_phase_unwrapped(b, GND);
        for w in ph.windows(2) {
            assert!(
                (w[1] - w[0]).abs() < 1.0,
                "phase jump: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(ph.last().unwrap().to_degrees() < -150.0);
    }

    #[test]
    fn empty_grid_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, GND, 1e3).unwrap();
        c.add_vsource("V1", a, GND, Waveform::Dc(1.0)).unwrap();
        let opts = SimOptions::default();
        let op = crate::analysis::dc::op(&c, &opts).unwrap();
        assert!(ac(&c, &opts, &op, &[]).is_err());
    }
}
