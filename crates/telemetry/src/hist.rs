//! Log2-bucket histograms: the aggregation primitive behind every metric.
//!
//! A histogram is a fixed array of power-of-two buckets plus exact
//! count/sum totals. Bucket `0` holds the value `0`; bucket `b > 0` holds
//! values in `[2^(b-1), 2^b)`; the last bucket additionally absorbs
//! everything too large to index. Observation and merge are plain integer
//! adds, so merging per-worker shards is associative and commutative —
//! the property `tests/telemetry.rs` pins with proptest.

/// Number of buckets: value `0`, then one bucket per power of two up to
/// `2^31`, with the last bucket clamping everything larger. Nanosecond
/// latencies up to ~2 s and every counter in the workspace land in range.
pub const HIST_BUCKETS: usize = 33;

/// The bucket index a value falls into.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket's value range.
pub fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// A merged log2-bucket histogram with exact totals.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Observations per bucket (see [`bucket_of`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Exact sum of all observed values (wrapping on overflow).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// The empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// True if nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the highest non-empty bucket (0 when empty) — a
    /// cheap order-of-magnitude "max".
    pub fn max_floor(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(bucket_floor)
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram {{ count: {}, sum: {}, buckets: [",
            self.count, self.sum
        )?;
        let mut first = true;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{}+: {n}", bucket_floor(b))?;
                first = false;
            }
        }
        write!(f, "] }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for b in 1..HIST_BUCKETS - 1 {
            let lo = bucket_floor(b);
            assert_eq!(bucket_of(lo), b, "floor of bucket {b}");
            assert_eq!(bucket_of(2 * lo - 1), b, "ceiling of bucket {b}");
            assert_eq!(bucket_of(2 * lo), b + 1, "first value past bucket {b}");
        }
    }

    #[test]
    fn observe_and_merge_agree_with_totals() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 1, 1, 5, 1000, 123_456_789] {
            a.observe(v);
            all.observe(v);
        }
        for v in [2u64, 3, 65_536] {
            b.observe(v);
            all.observe(v);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, all);
        assert_eq!(merged.count, 9);
        assert_eq!(merged.sum, 1 + 1 + 5 + 1000 + 123_456_789 + 2 + 3 + 65_536);
    }

    #[test]
    fn max_floor_names_the_top_bucket() {
        let mut h = Histogram::new();
        assert_eq!(h.max_floor(), 0);
        h.observe(700);
        assert_eq!(h.max_floor(), 512);
    }
}
